"""PR-4 parallel-plane benchmarks: sharded execution vs. the serial plane.

The parallel execution plane (:mod:`repro.parallel`) cuts a document at
top-level anchor boundaries, maps the shards onto worker processes (one
pass per shard feeds both the rule shredder and the key checker) and
merges the per-shard states.  Two claims are pinned here, in the style of
the PR 1–3 gates (plain ``perf_counter`` timing under
``--benchmark-disable``):

* ``test_parallel_output_identical_report`` — on a ~100k-node document the
  merged output must equal the serial streaming plane *byte-for-byte*:
  same rows in the same order, same violations with the same node ids and
  detail strings.  This runs everywhere, single-core boxes included.

* ``test_parallel_speedup_report`` — end-to-end (split + map + merge,
  shred and key check together) must beat the serial single pass ≥ 2× at
  4 workers.  Parallel speedup needs parallel hardware, so the gate skips
  (loudly) on machines with fewer than 4 CPUs; CI provides 4.

The ``@pytest.mark.benchmark`` cases record serial and parallel pipeline
throughput per push into the ``BENCH_PR4.json`` CI artifact.
"""

import os
import time

import pytest

from repro.experiments.generators import generate_workload
from repro.experiments.scenarios import synthesize_document_chunks, synthesized_node_count
from repro.parallel import run_sharded

GATE_JOBS = 4
REQUIRED_SPEEDUP = 2.0

#: ~104k nodes, 24 keys: the data-scale shape of the PR-3 gate document,
#: grown one order of magnitude for the parallel plane.
GATE_FIELDS = 20
GATE_DEPTH = 4
GATE_KEYS = 24
GATE_FANOUT = 4
GATE_REPEAT = 30
GATE_DUPLICATE_EVERY = 211


@pytest.fixture(scope="module")
def gate_document():
    workload = generate_workload(
        GATE_FIELDS, depth=GATE_DEPTH, num_keys=GATE_KEYS, seed=2
    )
    nodes = synthesized_node_count(
        workload, fanout=GATE_FANOUT, top_level_repeat=GATE_REPEAT
    )
    text = "".join(
        synthesize_document_chunks(
            workload,
            fanout=GATE_FANOUT,
            top_level_repeat=GATE_REPEAT,
            duplicate_every=GATE_DUPLICATE_EVERY,
        )
    )
    return workload, text, nodes


def _pipeline(workload, text, jobs):
    return run_sharded(
        text, transformation=[workload.rule], keys=workload.keys, jobs=jobs
    )


def _best_of(callable_, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        begin = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - begin)
    return best, result


def _fingerprint(run):
    rows = {name: instance.rows for name, instance in run.instances.items()}
    violations = [
        (v.key.text, v.context_node_id, v.kind, v.node_ids, v.detail)
        for v in run.violations
    ]
    return rows, violations


# ----------------------------------------------------------------------
# Gate 1 (runs everywhere): merged output ≡ serial output, byte for byte
# ----------------------------------------------------------------------
def test_parallel_output_identical_report(gate_document):
    workload, text, nodes = gate_document
    assert nodes >= 90_000, "the gate document must stay ~100k-node scale"
    serial = _pipeline(workload, text, jobs=1)
    parallel = _pipeline(workload, text, jobs=GATE_JOBS)
    assert serial.shards == 1
    assert parallel.shards > 1
    assert _fingerprint(parallel) == _fingerprint(serial)
    print(
        f"\n[bench_parallel] {nodes} nodes / {len(workload.keys)} keys: "
        f"{parallel.shards} shards on {GATE_JOBS} workers reproduce the serial "
        f"output exactly ({sum(len(r) for r in serial.instances.values())} rows, "
        f"{len(serial.violations)} violations)"
    )


# ----------------------------------------------------------------------
# Gate 2 (needs >= 4 CPUs): >= 2x end-to-end at 4 workers
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    (os.cpu_count() or 1) < GATE_JOBS,
    reason=f"parallel speedup gate needs >= {GATE_JOBS} CPUs "
    f"(this machine has {os.cpu_count()})",
)
def test_parallel_speedup_report(gate_document):
    workload, text, nodes = gate_document
    serial_time, serial = _best_of(lambda: _pipeline(workload, text, jobs=1))
    parallel_time, parallel = _best_of(
        lambda: _pipeline(workload, text, jobs=GATE_JOBS)
    )
    assert _fingerprint(parallel) == _fingerprint(serial)

    speedup = serial_time / parallel_time
    print(
        f"\n[bench_parallel] end-to-end shred+check on {nodes} nodes / "
        f"{len(workload.keys)} keys: serial {serial_time * 1000:.0f} ms, "
        f"{GATE_JOBS} workers {parallel_time * 1000:.0f} ms -> {speedup:.2f}x "
        f"(gate >= {REQUIRED_SPEEDUP:.0f}x)"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"parallel speedup {speedup:.2f}x below the {REQUIRED_SPEEDUP:.0f}x gate "
        f"(serial {serial_time * 1000:.0f} ms vs parallel "
        f"{parallel_time * 1000:.0f} ms at {GATE_JOBS} workers)"
    )


# ----------------------------------------------------------------------
# Recorded throughput benchmarks (BENCH_PR4.json)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="parallel-pipeline")
def test_serial_pipeline_100k(benchmark, gate_document):
    workload, text, _ = gate_document
    run = benchmark(_pipeline, workload, text, 1)
    assert run.shards == 1


@pytest.mark.benchmark(group="parallel-pipeline")
def test_parallel_pipeline_100k(benchmark, gate_document):
    workload, text, _ = gate_document
    run = benchmark(_pipeline, workload, text, GATE_JOBS)
    assert run.shards > 1


@pytest.mark.benchmark(group="parallel-split")
def test_split_scan_100k(benchmark, gate_document):
    from repro.xmlmodel.shards import split_document

    _, text, _ = gate_document
    shards = benchmark(split_document, text, GATE_JOBS * 2)
    assert shards is not None
