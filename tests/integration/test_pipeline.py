"""End-to-end pipeline tests on raw XML text and on synthetic feeds."""

import pytest

from repro import (
    check_propagation,
    evaluate_transformation,
    minimum_cover_from_keys,
    parse_document,
    parse_keys,
    parse_transformation,
)
from repro.core import check_instance, check_schema_consistency
from repro.experiments.generators import generate_document, generate_workload
from repro.keys import satisfies_all
from repro.relational.fd import coerce_fd
from repro.transform import evaluate_rule
from repro.xmlmodel.serializer import serialize


FEED = """
<proceedings>
  <conference acronym="ICDE" year="2003">
    <name>Data Engineering</name>
    <paper pid="543"><title>Key Propagation</title></paper>
    <paper pid="544"><title>Another Paper</title></paper>
  </conference>
  <conference acronym="ICDE" year="2004">
    <name>Data Engineering</name>
    <paper pid="1"><title>Later Paper</title></paper>
  </conference>
</proceedings>
"""

FEED_KEYS = """
(., (//conference, {@acronym, @year}))
(//conference, (paper, {@pid}))
(//conference, (name, {}))
(//conference/paper, (title, {}))
"""

FEED_TRANSFORMATION = """
table paper
  var c  <- xr : //conference
  var ca <- c  : @acronym
  var cy <- c  : @year
  var p  <- c  : paper
  var pi <- p  : @pid
  var pt <- p  : title
  field acronym = value(ca)
  field year    = value(cy)
  field pid     = value(pi)
  field title   = value(pt)
"""


class TestTextualPipeline:
    def test_parse_validate_shred_check(self):
        tree = parse_document(FEED)
        keys = parse_keys(FEED_KEYS)
        assert satisfies_all(tree, keys)

        sigma = parse_transformation(FEED_TRANSFORMATION)
        rule = sigma.rule("paper")
        instance = evaluate_rule(rule, tree)
        assert len(instance) == 3

        cover = minimum_cover_from_keys(keys, rule)
        rendered = {str(fd) for fd in cover.cover}
        assert "acronym, pid, year -> title" in rendered
        for fd in cover.cover:
            assert instance.satisfies_fd(fd.lhs, fd.rhs)

    def test_paper_pid_alone_is_not_enough(self):
        keys = parse_keys(FEED_KEYS)
        sigma = parse_transformation(FEED_TRANSFORMATION)
        result = check_propagation(keys, sigma.rule("paper"), "pid -> title")
        assert not result.holds

    def test_adding_a_global_key_strengthens_the_cover(self):
        keys = parse_keys(FEED_KEYS + "\n(., (//conference/paper, {@pid}))")
        sigma = parse_transformation(FEED_TRANSFORMATION)
        result = check_propagation(keys, sigma.rule("paper"), "pid -> title")
        assert result.holds

    def test_round_trip_through_serializer(self):
        tree = parse_document(FEED)
        keys = parse_keys(FEED_KEYS)
        reparsed = parse_document(serialize(tree))
        assert satisfies_all(reparsed, keys)


class TestSyntheticPipeline:
    def test_full_cycle_on_generated_workload(self):
        workload = generate_workload(num_fields=12, depth=4, num_keys=9, seed=13)
        doc = generate_document(workload, fanout=2, seed=13)
        assert satisfies_all(doc, workload.keys)

        instance = evaluate_rule(workload.rule, doc)
        cover = minimum_cover_from_keys(workload.keys, workload.rule)
        assert cover.cover, "the synthetic workload should propagate at least one FD"
        for fd in cover.cover:
            assert instance.satisfies_fd(fd.lhs, fd.rhs), str(fd)

    def test_declared_keys_checked_statically_and_dynamically(self):
        workload = generate_workload(num_fields=10, depth=3, num_keys=8, seed=21)
        doc = generate_document(workload, fanout=2, seed=21)
        schema = workload.rule.schema(keys=[set(workload.key_fields)])
        from repro.relational.schema import DatabaseSchema
        from repro.transform.rule import Transformation

        sigma = Transformation([workload.rule])
        db = DatabaseSchema([schema])
        static = check_schema_consistency(workload.keys, sigma, db)
        dynamic = check_instance(sigma, db, doc)
        assert dynamic["U"].rows > 0
        if static.consistent:
            assert dynamic["U"].ok
