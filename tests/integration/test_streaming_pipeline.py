"""End-to-end regression: the Figure 2(a) import failure, streaming edition.

Example 1.1 / Figure 2(a) of the paper: the consumer shreds the document of
Figure 1 into a ``Chapter(bookTitle, chapterNum, chapterName)`` table whose
declared key is ``(bookTitle, chapterNum)`` — and the import fails, because
two books are both titled ``XML`` and both have a chapter number 1.  The
refined design keyed on ``(isbn, chapterNum)`` loads cleanly.

This suite pins that reproduction end-to-end through the *streaming* data
plane: document text → event stream → streaming shredder → hash-grouped key
check → report (and the CLI front end on top), with the DOM pipeline as the
reference at every step.
"""

import pytest

from repro.cli import main
from repro.experiments import paper_example as pe
from repro.relational.instance import RelationInstance
from repro.transform.evaluate import evaluate_transformation
from repro.transform.stream import stream_evaluate_transformation
from repro.xmlmodel.serializer import serialize


@pytest.fixture(scope="module")
def figure1_text():
    return serialize(pe.figure1_document(), xml_declaration=True)


class TestFigure2aStreaming:
    def test_initial_design_fails_to_import(self, figure1_text):
        transformation, schema = pe.initial_chapter_design()
        instances = stream_evaluate_transformation(
            transformation, figure1_text, schema=schema
        )
        chapter = instances["Chapter"]
        assert not chapter.satisfies_key()
        found = chapter.key_violations()
        assert [violation.kind for violation in found] == ["value-conflict"]
        # The witness of Figure 2(a): two chapters number 1 of books titled
        # "XML", with different names.
        assert "'XML'" in found[0].detail and "'1'" in found[0].detail

    def test_streaming_instance_matches_dom_instance(self, figure1_text):
        transformation, schema = pe.initial_chapter_design()
        dom = evaluate_transformation(
            transformation, pe.figure1_document(), schema=schema
        )
        stream = stream_evaluate_transformation(transformation, figure1_text, schema=schema)
        assert set(dom["Chapter"].rows) == set(stream["Chapter"].rows)
        # Identical violation reports from identical instances.
        dom_report = [v.kind for v in dom["Chapter"].key_violations()]
        stream_report = [v.kind for v in stream["Chapter"].key_violations()]
        assert dom_report == stream_report == ["value-conflict"]

    def test_refined_design_imports_cleanly(self, figure1_text):
        transformation, schema = pe.refined_chapter_design()
        instances = stream_evaluate_transformation(
            transformation, figure1_text, schema=schema
        )
        assert instances["Chapter"].satisfies_key()
        assert len(instances["Chapter"]) == 3

    def test_cli_check_doc_streams_the_violation_report(self, tmp_path, capsys):
        # The XML-level counterpart: a document violating K2 reported through
        # `check-doc` (document → streaming violations → report).
        keys_file = tmp_path / "keys.txt"
        keys_file.write_text("K2 = (//book, (chapter, {@number}))\n")
        bad = tmp_path / "bad.xml"
        bad.write_text(
            '<r><book isbn="1"><chapter number="1"/><chapter number="1"/></book></r>'
        )
        code = main(["check-doc", "--keys", str(keys_file), "--xml", str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "key violated" in out and "duplicate-value" in out
        # The DOM reference agrees verbatim.
        code_dom = main(["check-doc", "--keys", str(keys_file), "--xml", str(bad), "--dom"])
        out_dom = capsys.readouterr().out
        assert code_dom == 1
        assert out_dom == out

    def test_cli_shred_stream_matches_dom_output(self, tmp_path, capsys, figure1_text):
        transform_file = tmp_path / "rules.dsl"
        transform_file.write_text(
            "table Chapter\n"
            "  var ba <- xr : //book\n"
            "  var bt <- ba : title\n"
            "  var bc <- ba : chapter\n"
            "  var cn <- bc : @number\n"
            "  var cm <- bc : name\n"
            "  field bookTitle   = value(bt)\n"
            "  field chapterNum  = value(cn)\n"
            "  field chapterName = value(cm)\n"
        )
        xml_file = tmp_path / "figure1.xml"
        xml_file.write_text(figure1_text)
        argv = ["shred", "--transform", str(transform_file), "--xml", str(xml_file)]
        assert main(argv) == 0
        dom_out = capsys.readouterr().out
        assert main(argv + ["--stream"]) == 0
        stream_out = capsys.readouterr().out
        assert sorted(stream_out.splitlines()) == sorted(dom_out.splitlines())
