"""End-to-end gate of the storage plane (the PR-5 acceptance criterion).

A scenario document with injected violations is shredded on the *parallel*
plane (sharded, real merge path) and loaded into a strict-mode database:
the load must raise on exactly the rows the engine's UNIQUE semantics
reject (computed independently by a reference replay here).  The same
shred staged in log mode must make :class:`SQLVerifier` reproduce the
in-memory checkers' witnesses identically.
"""

import pytest

from repro.core import minimum_cover_from_keys
from repro.experiments.scenarios import (
    ScenarioSpec,
    build_corpus,
    build_scenario,
    scenario_text,
)
from repro.parallel import run_sharded
from repro.relational.instance import NULL, RelationInstance
from repro.storage import (
    BulkLoader,
    LoadError,
    SQLVerifier,
    SQLiteBackend,
    compile_ddl,
)

SPEC = ScenarioSpec(
    num_fields=10,
    depth=3,
    num_keys=8,
    fanout=3,
    duplicate_violations=3,
    missing_violations=2,
    seed=11,
)


@pytest.fixture(scope="module")
def sharded_shred():
    scenario = build_scenario(SPEC)
    text = scenario_text(scenario)
    rule = scenario.workload.rule
    run = run_sharded(text, transformation=[rule], jobs=4, use_processes=False)
    assert run.shards > 1, "the gate requires a genuinely sharded shred"
    cover = minimum_cover_from_keys(scenario.keys, rule).cover
    return scenario, rule, run.instances["U"], cover


def _expected_unique_rejections(instance, key_sets):
    """Replay of SQL UNIQUE semantics: a row is rejected iff some key set
    has already accepted a row with the same (null-free) key tuple."""
    seen = {key: set() for key in key_sets}
    rejected = []
    for row in instance.rows:
        tuples = {}
        duplicate = False
        for key in key_sets:
            values = tuple(row.get_value(a) for a in sorted(key))
            if any(value is NULL for value in values):
                continue  # UNIQUE treats nulls as distinct
            if values in seen[key]:
                duplicate = True
            tuples[key] = values
        if duplicate:
            rejected.append(dict(row.as_dict()))
        else:
            for key, values in tuples.items():
                seen[key].add(values)
    return rejected


class TestStrictGate:
    def test_strict_load_raises_on_exactly_the_violating_rows(self, sharded_shred):
        scenario, rule, instance, cover = sharded_shred
        ddl = compile_ddl(rule.schema(), cover, mode="strict")
        key_sets = ddl.table("U").key_sets
        assert key_sets, "the propagated cover must yield at least one key"
        assert frozenset(scenario.workload.key_fields) in key_sets

        expected = _expected_unique_rejections(instance, key_sets)
        assert expected, "the scenario must actually inject key violations"

        backend = SQLiteBackend()
        loader = BulkLoader(backend, ddl)
        loader.create_schema()
        with pytest.raises(LoadError) as info:
            loader.load_rows("U", instance.rows)
        rejected = [dict(row) for row in info.value.rows]
        assert rejected == expected

    def test_missing_attribute_rows_pass_unique(self, sharded_shred):
        # Rows whose key contains a NULL (the missing-attribute injections)
        # are exempt from UNIQUE — strict mode stages them, the verifier's
        # null-determinant condition reports them.
        scenario, rule, instance, cover = sharded_shred
        ddl = compile_ddl(rule.schema(), cover, mode="strict")
        spine = frozenset(scenario.workload.key_fields)
        with_null_key = [
            row for row in instance.rows
            if any(row.get_value(a) is NULL for a in spine)
        ]
        assert with_null_key, "the scenario must inject missing attributes"
        expected = _expected_unique_rejections(instance, ddl.table("U").key_sets)
        null_keys = {tuple(sorted(row.as_dict().items(), key=lambda kv: kv[0]))
                     for row in with_null_key}
        for row in expected:
            assert tuple(sorted(row.items())) not in null_keys


class TestLogModeVerification:
    def test_sql_witnesses_identical_to_in_memory(self, sharded_shred):
        scenario, rule, instance, cover = sharded_shred
        ddl = compile_ddl(rule.schema(), cover, mode="log")
        backend = SQLiteBackend()
        loader = BulkLoader(backend, ddl)
        loader.create_schema()
        loader.load_rows("U", instance.rows)
        verifier = SQLVerifier(backend, ddl)
        attributes = set(instance.schema.attributes)
        for key in ddl.table("U").key_sets:
            assert verifier.fd_violations("U", key, attributes) == (
                instance.fd_violations(key, attributes)
            )
        # Non-key FDs of the cover too, not just keys.
        for fd in ddl.table("U").index_fds:
            assert verifier.fd_violations("U", fd.lhs, fd.rhs) == (
                instance.fd_violations(fd.lhs, fd.rhs)
            )


class TestCorpusGate:
    def test_cross_document_duplicates_found_in_database(self):
        corpus = build_corpus(
            ScenarioSpec(num_fields=8, depth=3, num_keys=6, fanout=2, seed=3),
            documents=3,
            cross_duplicates=4,
        )
        rule = corpus.workload.rule
        cover = minimum_cover_from_keys(corpus.keys, rule).cover
        ddl = compile_ddl(
            rule.schema(), cover, mode="log", provenance_column="_document"
        )
        backend = SQLiteBackend()
        loader = BulkLoader(backend, ddl)
        loader.create_schema()
        texts = corpus.texts()
        report = loader.load_corpus(list(zip(corpus.document_ids, texts)), [rule])
        assert report.documents == corpus.document_ids

        merged = RelationInstance(ddl.table("U").schema)
        for text in texts:
            shredded = run_sharded(text, transformation=[rule], jobs=2,
                                   use_processes=False)
            for row in shredded.instances["U"].rows:
                merged.add_row(row)
        verifier = SQLVerifier(backend, ddl)
        spine = frozenset(corpus.workload.key_fields)
        attributes = set(merged.schema.attributes)
        sql_witnesses = verifier.fd_violations("U", spine, attributes)
        assert sql_witnesses == merged.fd_violations(spine, attributes)
        assert len(sql_witnesses) == corpus.expected_cross_duplicates

    def test_strict_corpus_rejects_only_duplicated_documents(self):
        corpus = build_corpus(
            ScenarioSpec(num_fields=8, depth=3, num_keys=6, fanout=2, seed=5),
            documents=3,
            cross_duplicates=2,
        )
        rule = corpus.workload.rule
        cover = minimum_cover_from_keys(corpus.keys, rule).cover
        ddl = compile_ddl(
            rule.schema(), cover, mode="strict", provenance_column="_document"
        )
        backend = SQLiteBackend()
        loader = BulkLoader(backend, ddl)
        loader.create_schema()
        report = loader.load_corpus(
            list(zip(corpus.document_ids, corpus.texts())),
            [rule],
            on_error="skip",
        )
        duplicated = {f"doc{target}" for target, _ in corpus.injections}
        assert set(report.rejected) == duplicated
        assert "doc0" in report.documents
        total_rejected_rows = sum(len(e.rows) for e in report.rejected.values())
        assert total_rejected_rows == corpus.expected_cross_duplicates
