"""Integration tests tying every worked example of the paper together."""

import pytest

from repro.core import (
    check_propagation,
    check_schema_consistency,
    minimum_cover_from_keys,
    naive_minimum_cover,
)
from repro.design import design_from_scratch
from repro.experiments import paper_example as pe
from repro.keys import satisfies_all
from repro.relational.fd import equivalent
from repro.transform import evaluate_transformation


class TestFigure1AndExample21:
    def test_document_satisfies_all_keys(self, figure1, paper_keys):
        assert satisfies_all(figure1, paper_keys)

    def test_key_names(self, paper_keys):
        assert [key.name for key in paper_keys] == ["K1", "K2", "K3", "K4", "K5", "K6", "K7"]

    def test_document_statistics(self, figure1):
        assert len(figure1.elements_by_tag("book")) == 2
        assert len(figure1.elements_by_tag("chapter")) == 3
        assert len(figure1.elements_by_tag("section")) == 2

    def test_mutated_document_violates_k1(self, figure1, paper_keys):
        mutated = figure1.copy()
        for book in mutated.elements_by_tag("book"):
            book.set_attribute("isbn", "123")
        mutated.reindex()
        assert not satisfies_all(mutated, paper_keys)


class TestFigure2:
    def test_initial_design_produces_figure_2a_and_violates_key(self, figure1):
        transformation, schema = pe.initial_chapter_design()
        instance = evaluate_transformation(transformation, figure1, schema=schema)["Chapter"]
        assert len(instance) == 3
        assert not instance.satisfies_key()

    def test_refined_design_produces_figure_2b_and_satisfies_key(self, figure1):
        transformation, schema = pe.refined_chapter_design()
        instance = evaluate_transformation(transformation, figure1, schema=schema)["Chapter"]
        assert len(instance) == 3
        assert instance.satisfies_key()

    def test_static_analysis_matches_dynamic_observation(self, paper_keys):
        initial_sigma, initial_schema = pe.initial_chapter_design()
        refined_sigma, refined_schema = pe.refined_chapter_design()
        assert not check_schema_consistency(paper_keys, initial_sigma, initial_schema).consistent
        assert check_schema_consistency(paper_keys, refined_sigma, refined_schema).consistent


class TestExample31EndToEnd:
    def test_minimum_cover_and_bcnf_design(self, paper_keys, universal, figure1):
        cover = minimum_cover_from_keys(paper_keys, universal)
        assert set(cover.cover) == set(pe.EXPECTED_MINIMUM_COVER)

        design = design_from_scratch(paper_keys, universal)
        instances = evaluate_transformation(design.transformation, figure1, schema=design.schema)
        # Every propagated FD must hold on the shredded fragments that
        # contain its attributes.
        for relation in design.schema:
            instance = instances[relation.name]
            for fd in cover.cover:
                if fd.attributes <= set(relation.attributes):
                    assert instance.satisfies_fd(fd.lhs, fd.rhs)

    def test_naive_and_polynomial_algorithms_agree(self, paper_keys, universal):
        fast = minimum_cover_from_keys(paper_keys, universal)
        slow = naive_minimum_cover(paper_keys, universal, max_fields=8)
        assert equivalent(fast.cover, slow.cover)


class TestExample42:
    def test_positive_and_negative_checks(self, paper_keys, sigma):
        assert check_propagation(paper_keys, sigma.rule("book"), "isbn -> contact").holds
        assert not check_propagation(
            paper_keys, sigma.rule("section"), "inChapt, number -> name"
        ).holds


class TestShreddingConsistencyWithPropagation:
    """Soundness on the concrete document: every FD declared propagated must
    hold on the instance shredded from Figure 1 (which satisfies the keys)."""

    @pytest.mark.parametrize(
        "relation,fd",
        [
            ("book", "isbn -> title"),
            ("book", "isbn -> contact"),
            ("book", "isbn -> author"),
            ("chapter", "inBook, number -> name"),
            ("chapter", "inBook -> name"),
            ("section", "inChapt, number -> name"),
            ("section", "inChapt -> number"),
        ],
    )
    def test_propagated_implies_satisfied(self, paper_keys, sigma, figure1, relation, fd):
        result = check_propagation(paper_keys, sigma.rule(relation), fd)
        if result.holds:
            instances = evaluate_transformation(sigma, figure1)
            instance = instances[relation]
            from repro.relational.fd import coerce_fd

            parsed = coerce_fd(fd)
            assert instance.satisfies_fd(parsed.lhs, parsed.rhs)
