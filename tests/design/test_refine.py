"""The end-to-end design-from-scratch workflow (Examples 1.2 / 3.1)."""

import pytest

from repro.design.refine import design_from_scratch, restrict_rule, validate_existing_design
from repro.experiments.paper_example import initial_chapter_design
from repro.relational.fd import implies_fd
from repro.relational.normalization import is_3nf, is_bcnf, project_fds
from repro.transform.evaluate import evaluate_transformation
from repro.transform.validate import validate_rule


class TestDesignFromScratch:
    def test_bcnf_fragments_are_bcnf(self, paper_keys, universal):
        result = design_from_scratch(paper_keys, universal, normal_form="BCNF")
        for relation in result.schema:
            assert is_bcnf(relation.attributes, result.fd_by_relation[relation.name])

    def test_3nf_fragments_are_3nf(self, paper_keys, universal):
        result = design_from_scratch(paper_keys, universal, normal_form="3NF")
        for relation in result.schema:
            local = project_fds(relation.attributes, result.cover.cover)
            assert is_3nf(relation.attributes, local)

    def test_all_fields_survive_the_decomposition(self, paper_keys, universal):
        result = design_from_scratch(paper_keys, universal)
        covered = set()
        for relation in result.schema:
            covered |= set(relation.attributes)
        assert covered == set(universal.fields)

    def test_expected_fragments_present(self, paper_keys, universal):
        result = design_from_scratch(paper_keys, universal)
        attribute_sets = [set(r.attributes) for r in result.schema]
        assert {"bookIsbn", "bookTitle", "authContact"} in attribute_sets
        assert {"bookIsbn", "chapNum", "chapName"} in attribute_sets
        assert {"bookIsbn", "chapNum", "secNum", "secName"} in attribute_sets

    def test_fragment_rules_are_wellformed_and_evaluable(self, paper_keys, universal, figure1):
        result = design_from_scratch(paper_keys, universal)
        for rule in result.transformation:
            assert validate_rule(rule).ok
        instances = evaluate_transformation(result.transformation, figure1, schema=result.schema)
        assert set(instances) == set(result.schema.relation_names)
        # The book fragment has exactly the two books.
        for relation in result.schema:
            if set(relation.attributes) == {"bookIsbn", "bookTitle", "authContact"}:
                assert len(instances[relation.name]) == 2

    def test_declared_keys_hold_on_shredded_data(self, paper_keys, universal, figure1):
        result = design_from_scratch(paper_keys, universal)
        instances = evaluate_transformation(result.transformation, figure1, schema=result.schema)
        for relation in result.schema:
            if set(relation.attributes) == {"bookIsbn", "chapNum", "chapName"}:
                assert instances[relation.name].satisfies_key()

    def test_custom_relation_names(self, paper_keys, universal):
        names = {frozenset({"bookIsbn", "bookTitle", "authContact"}): "book"}
        result = design_from_scratch(paper_keys, universal, relation_names=names)
        assert "book" in result.schema.relation_names

    def test_unknown_normal_form_rejected(self, paper_keys, universal):
        with pytest.raises(ValueError):
            design_from_scratch(paper_keys, universal, normal_form="6NF")

    def test_describe(self, paper_keys, universal):
        text = design_from_scratch(paper_keys, universal).describe()
        assert "Minimum cover" in text and "BCNF" in text


class TestRestrictRule:
    def test_restriction_keeps_only_needed_variables(self, universal):
        restricted = restrict_rule(universal.rule, ["bookIsbn", "bookTitle"], "book")
        assert set(restricted.field_names) == {"bookIsbn", "bookTitle"}
        assert validate_rule(restricted).ok
        assert not restricted.has_variable("zs")

    def test_restriction_is_evaluable(self, universal, figure1):
        from repro.transform.evaluate import evaluate_rule

        restricted = restrict_rule(universal.rule, ["bookIsbn", "chapNum", "chapName"], "chapter")
        instance = evaluate_rule(restricted, figure1)
        assert len(instance) == 3


class TestValidateExistingDesign:
    def test_reexport_behaves_like_core(self, paper_keys):
        transformation, schema = initial_chapter_design()
        assert not validate_existing_design(paper_keys, transformation, schema).consistent
