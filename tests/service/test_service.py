"""End-to-end tests of the asyncio ingestion service.

Each test drives the service inside ``asyncio.run`` — uploads travel the
real path: bounded queue → worker task → thread pool → connection pool →
:class:`~repro.storage.loader.BulkLoader`.
"""

import asyncio
import json

import pytest

from repro.relational.schema import RelationSchema
from repro.service import IngestionService
from repro.service.registry import rule_to_wire, schema_to_wire
from repro.storage import FaultInjectingBackend, FaultPlan, LoadError, SQLiteBackend
from repro.storage.backend import TransientError
from repro.transform.rule import TableRule

RULES = [
    TableRule(
        "t",
        fields={"a": "xa", "b": "xb"},
        mappings=[("xi", "xr", "i"), ("xa", "xi", "a"), ("xb", "xi", "b")],
    )
]

SCHEMA = [RelationSchema("t", ["a", "b"], keys=[frozenset({"a"})])]


def _doc(*pairs):
    items = "".join(f"<i><a>{a}</a><b>{b}</b></i>" for a, b in pairs)
    return f"<r>{items}</r>"


def run(coro):
    return asyncio.run(coro)


async def _with_service(body, **kwargs):
    service = IngestionService(**kwargs)
    await service.start()
    try:
        return await body(service)
    finally:
        await service.stop()
        service.close()


class TestIngestion:
    def test_upload_counts_rows(self):
        async def body(service):
            service.register_tenant("acme", RULES, schema=SCHEMA)
            return await service.upload("acme", _doc(("1", "x"), ("2", "y")))

        assert run(_with_service(body)) == {"t": 2}

    def test_concurrent_uploads_across_tenants(self):
        async def body(service):
            service.register_tenant("acme", RULES, schema=SCHEMA)
            service.register_tenant("beta", RULES, schema=SCHEMA)
            results = await asyncio.gather(
                service.upload("acme", _doc(("1", "x"))),
                service.upload("beta", _doc(("1", "x"), ("2", "y"))),
                service.upload("acme", _doc(("2", "y"))),
                service.upload("beta", _doc(("3", "z"))),
            )
            return results, service.stats()

        results, stats = run(_with_service(body, workers=4))
        assert results == [{"t": 1}, {"t": 2}, {"t": 1}, {"t": 1}]
        assert stats["acme"] == {
            "documents": 2, "rows": {"t": 2}, "queue_depth": 0,
            "uploads": 2, "loaded_rows": 2, "rejections": 0,
        }
        assert stats["beta"] == {
            "documents": 2, "rows": {"t": 3}, "queue_depth": 0,
            "uploads": 2, "loaded_rows": 3, "rejections": 0,
        }

    def test_unknown_tenant_fails_before_queueing(self):
        async def body(service):
            with pytest.raises(KeyError):
                await service.upload("ghost", _doc(("1", "x")))

        run(_with_service(body))

    def test_strict_rejection_rolls_back_the_document(self):
        async def body(service):
            service.register_tenant("acme", RULES, schema=SCHEMA, mode="strict")
            await service.upload("acme", _doc(("1", "x")))
            with pytest.raises(LoadError):
                await service.upload("acme", _doc(("2", "y"), ("1", "dup")))
            # The rejected document vanished entirely; the service keeps
            # serving and the next document lands.
            counts = await service.upload("acme", _doc(("3", "z")))
            assert counts == {"t": 1}
            return service.stats()

        stats = run(_with_service(body))
        assert stats["acme"] == {
            "documents": 2, "rows": {"t": 2}, "queue_depth": 0,
            "uploads": 3, "loaded_rows": 2, "rejections": 1,
        }

    def test_log_mode_stages_and_verify_reports(self):
        async def body(service):
            service.register_tenant("acme", RULES, schema=SCHEMA, mode="log")
            await service.upload("acme", _doc(("1", "x")))
            await service.upload("acme", _doc(("1", "conflict")))
            return await service.verify("acme")

        violations = run(_with_service(body))
        assert set(violations) == {"t"}
        assert violations["t"]  # logical, not physical, table names

    def test_strict_tenant_verifies_clean(self):
        async def body(service):
            service.register_tenant("acme", RULES, schema=SCHEMA)
            await service.upload("acme", _doc(("1", "x")))
            return await service.verify("acme")

        assert run(_with_service(body)) == {}

    def test_transient_fault_fails_one_upload_not_the_service(self, tmp_path):
        # File-backed: the pool discards the faulted backend (its
        # connection state is suspect) and the factory's replacement must
        # find the data again.
        database = str(tmp_path / "service.db")

        def factory():
            # Per-backend data-statement ordinals: 0-1 are the tenant's
            # CREATE TABLE/INDEX, 2 the first upload's batch — so 3
            # breaks exactly the second upload.
            backend = SQLiteBackend(database, check_same_thread=False)
            return FaultInjectingBackend(backend, FaultPlan.failing(3))

        async def body(service):
            service.register_tenant("acme", RULES, schema=SCHEMA)
            await service.upload("acme", _doc(("1", "x")))
            with pytest.raises(TransientError):
                await service.upload("acme", _doc(("2", "y")))
            counts = await service.upload("acme", _doc(("3", "z")))
            assert counts == {"t": 1}
            return service.stats()

        stats = run(_with_service(body, backend_factory=factory))
        assert stats["acme"]["documents"] == 2

    def test_upload_before_start_raises(self):
        service = IngestionService()
        service.register_tenant("acme", RULES, schema=SCHEMA)
        with pytest.raises(RuntimeError):
            run(service.upload("acme", _doc(("1", "x"))))
        service.close()


class TestDispatch:
    def _register_request(self, tenant="acme", mode="strict"):
        return {
            "op": "register",
            "tenant": tenant,
            "rules": [rule_to_wire(rule) for rule in RULES],
            "schema": [schema_to_wire(schema) for schema in SCHEMA],
            "mode": mode,
        }

    def test_ping(self):
        async def body(service):
            return await service.dispatch({"op": "ping"})

        assert run(_with_service(body)) == {"ok": True, "op": "ping"}

    def test_register_upload_verify_stats(self):
        async def body(service):
            out = []
            out.append(await service.dispatch(self._register_request(mode="log")))
            out.append(
                await service.dispatch(
                    {"op": "upload", "tenant": "acme", "text": _doc(("1", "x"))}
                )
            )
            out.append(await service.dispatch({"op": "verify", "tenant": "acme"}))
            out.append(await service.dispatch({"op": "stats"}))
            return out

        register, upload, verify, stats = run(_with_service(body))
        assert register == {
            "ok": True, "tenant": "acme", "tables": ["t"], "mode": "log",
        }
        assert upload == {"ok": True, "rows": {"t": 1}}
        assert verify == {"ok": True, "violations": {}}
        assert stats["tenants"]["acme"]["documents"] == 1

    def test_strict_rejection_carries_the_rows(self):
        async def body(service):
            await service.dispatch(self._register_request())
            await service.dispatch(
                {"op": "upload", "tenant": "acme", "text": _doc(("1", "x"))}
            )
            return await service.dispatch(
                {
                    "op": "upload",
                    "tenant": "acme",
                    "text": _doc(("1", "dup")),
                    "document": "d2",
                }
            )

        response = run(_with_service(body))
        assert response["ok"] is False
        assert response["table"] == "acme__t"
        # The pinpointed rows carry the relation's attributes (provenance
        # is bookkeeping, not part of the violating tuple).
        assert response["rejected"] == [{"a": "1", "b": "dup"}]

    def test_errors_never_escape_dispatch(self):
        async def body(service):
            return [
                await service.dispatch({"op": "warp"}),
                await service.dispatch({"op": "upload", "tenant": "ghost", "text": ""}),
                await service.dispatch({"op": "register", "tenant": "x", "rules": []}),
            ]

        unknown, ghost, empty = run(_with_service(body))
        assert not unknown["ok"] and "unknown op" in unknown["error"]
        assert not ghost["ok"] and "ghost" in ghost["error"]
        assert not empty["ok"]


class TestWireProtocol:
    def test_tcp_round_trip(self):
        async def body(service):
            server = await asyncio.start_server(
                service.handle_connection, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def ask(request):
                writer.write(json.dumps(request).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            out = []
            out.append(await ask({"op": "ping"}))
            out.append(
                await ask(
                    {
                        "op": "register",
                        "tenant": "acme",
                        "rules": [rule_to_wire(rule) for rule in RULES],
                        "schema": [schema_to_wire(schema) for schema in SCHEMA],
                    }
                )
            )
            out.append(
                await ask({"op": "upload", "tenant": "acme", "text": _doc(("1", "x"))})
            )
            writer.write(b"this is not json\n")
            await writer.drain()
            out.append(json.loads(await reader.readline()))
            writer.close()
            server.close()
            await server.wait_closed()
            return out

        ping, register, upload, garbage = run(_with_service(body))
        assert ping["ok"] and register["ok"]
        assert upload == {"ok": True, "rows": {"t": 1}}
        assert not garbage["ok"] and "bad request" in garbage["error"]


class TestObservability:
    """The live-introspection surface: stats verb + Prometheus endpoint."""

    def test_stats_verb_carries_live_counters(self):
        async def body(service):
            service.register_tenant("acme", RULES, schema=SCHEMA, mode="strict")
            await service.upload("acme", _doc(("1", "x")))
            with pytest.raises(LoadError):
                await service.upload("acme", _doc(("1", "dup")))
            return await service.dispatch({"op": "stats"})

        response = run(_with_service(body))
        acme = response["tenants"]["acme"]
        assert acme["uploads"] == 2
        assert acme["loaded_rows"] == 1
        assert acme["rejections"] == 1
        assert acme["queue_depth"] == 0  # both uploads fully drained

    def test_queue_depth_counts_inflight_uploads(self):
        async def body(service):
            service.register_tenant("acme", RULES, schema=SCHEMA)
            # Uploads are enqueued but no worker has started yet (start()
            # ran, but we pause the loop before handing control over by
            # inspecting stats synchronously after put).
            task = asyncio.ensure_future(
                service.upload("acme", _doc(("1", "x")))
            )
            await asyncio.sleep(0)  # enqueue runs; the worker has not
            depth_mid = service.stats()["acme"]["queue_depth"]
            await task
            depth_after = service.stats()["acme"]["queue_depth"]
            return depth_mid, depth_after

        depth_mid, depth_after = run(_with_service(body))
        assert depth_mid == 1
        assert depth_after == 0

    def test_prometheus_endpoint_round_trip(self):
        async def body(service):
            service.register_tenant("acme", RULES, schema=SCHEMA)
            await service.upload("acme", _doc(("1", "x"), ("2", "y")))
            server = await service.serve_metrics("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
            await writer.drain()
            payload = await reader.read()
            writer.close()
            server.close()
            await server.wait_closed()
            return payload.decode("utf-8")

        payload = run(_with_service(body))
        head, _, text = payload.partition("\r\n\r\n")
        assert head.startswith("HTTP/1.0 200 OK")
        assert "text/plain" in head
        assert 'repro_service_uploads_total{tenant="acme"} 1' in text
        assert 'repro_service_loaded_rows_total{tenant="acme"} 2' in text
        assert 'repro_service_queue_depth{tenant="acme"} 0' in text
        # The pool counters land in the same always-on registry.
        assert "repro_pool_acquires_total" in text
