"""Tests for the tenant registry and the wire codecs."""

import pytest

from repro.relational.schema import RelationSchema
from repro.service import (
    SchemaRegistry,
    rule_from_wire,
    rule_to_wire,
    schema_from_wire,
    schema_to_wire,
)
from repro.transform.rule import TableRule

RULE = TableRule(
    "t",
    fields={"a": "xa", "b": "xb"},
    mappings=[("xi", "xr", "i"), ("xa", "xi", "a"), ("xb", "xi", "b")],
)

SCHEMA = RelationSchema("t", ["a", "b"], keys=[frozenset({"a"})])


class TestWireCodecs:
    def test_schema_round_trips(self):
        wire = schema_to_wire(SCHEMA)
        back = schema_from_wire(wire)
        assert back.name == SCHEMA.name
        assert list(back.attributes) == list(SCHEMA.attributes)
        assert set(back.keys) == set(SCHEMA.keys)

    def test_schema_wire_is_json_plain(self):
        import json

        json.dumps(schema_to_wire(SCHEMA))

    def test_rule_round_trips(self):
        wire = rule_to_wire(RULE)
        back = rule_from_wire(wire)
        assert rule_to_wire(back) == wire

    def test_malformed_payloads_raise_value_error(self):
        with pytest.raises(ValueError):
            schema_from_wire({"name": "t"})
        with pytest.raises(ValueError):
            rule_from_wire({})


class TestRegistry:
    def test_register_namespaces_tables(self):
        registry = SchemaRegistry()
        config = registry.register("acme", [RULE], schema=[SCHEMA])
        assert config.tables == {"t": "acme__t"}
        assert config.physical("t") == "acme__t"
        assert [rule.relation for rule in config.rules] == ["acme__t"]
        assert set(config.ddl.tables) == {"acme__t"}

    def test_unknown_relation_raises(self):
        registry = SchemaRegistry()
        config = registry.register("acme", [RULE])
        with pytest.raises(KeyError):
            config.physical("nope")

    def test_duplicate_tenant_needs_replace(self):
        registry = SchemaRegistry()
        registry.register("acme", [RULE])
        with pytest.raises(ValueError):
            registry.register("acme", [RULE])
        registry.register("acme", [RULE], replace=True)

    def test_tenants_are_isolated(self):
        registry = SchemaRegistry()
        a = registry.register("a", [RULE], schema=[SCHEMA])
        b = registry.register("b", [RULE], schema=[SCHEMA])
        assert a.physical("t") != b.physical("t")
        assert registry.tenants() == ["a", "b"]
        assert "a" in registry and "c" not in registry

    def test_inferred_schema_is_keyless(self):
        registry = SchemaRegistry()
        config = registry.register("acme", [RULE], mode="log")
        table = config.ddl.tables["acme__t"]
        assert list(table.schema.attributes) == ["a", "b"]

    def test_ordinal_column_lands_in_the_plan(self):
        registry = SchemaRegistry(ordinal_column="_rid")
        config = registry.register("acme", [RULE], schema=[SCHEMA])
        assert config.ddl.ordinal_column == "_rid"
        assert '"_rid"' in config.ddl.tables["acme__t"].create

    def test_logical_counts_translate_back(self):
        registry = SchemaRegistry()
        config = registry.register("acme", [RULE])
        assert config.logical_counts({"acme__t": 3}) == {"t": 3}
        config.merge_counts({"acme__t": 3})
        config.merge_counts({"acme__t": 2})
        assert config.loaded == {"t": 5}
        assert config.documents == 2
