"""Typed-literal audit: non-string values must store value-identically.

The storage plane is all ``TEXT`` columns, and without a canonical
rendering each engine applies its own affinity rules to a typed
parameter: sqlite turns ``1e20`` into ``'1.0e+20'`` and ``True`` into
``'1'``; a real PostgreSQL rejects integer parameters against ``TEXT``.
:func:`repro.relational.sql.encode_value` pins ``str(value)`` as *the*
text on every emission path — literals, parameters, COPY — so the same
value round-trips to the same text on every backend.
"""

import pytest

from repro.relational.instance import NULL
from repro.relational.sql import (
    copy_literal,
    encode_row,
    encode_value,
    quote_literal,
)
from repro.relational.schema import RelationSchema
from repro.storage import SQLiteBackend, fake_postgres_backend

# Values with a history of engine-specific renderings, with the one
# canonical text each must produce everywhere.
CASES = [
    (1, "1"),
    (-7, "-7"),
    (10**30, str(10**30)),
    (2.5, "2.5"),
    (1e20, "1e+20"),
    (-0.0, "-0.0"),
    (float("inf"), "inf"),
    (True, "True"),
    (False, "False"),
    ("plain", "plain"),
]


class TestEncodeValue:
    @pytest.mark.parametrize("value, expected", CASES)
    def test_canonical_text(self, value, expected):
        assert encode_value(value) == expected

    def test_null_maps_to_none(self):
        assert encode_value(NULL) is None
        assert encode_value(None) is None

    @pytest.mark.parametrize("value, expected", CASES)
    def test_quote_literal_quotes_the_canonical_text(self, value, expected):
        assert quote_literal(value) == "'" + expected.replace("'", "''") + "'"

    @pytest.mark.parametrize("value, expected", CASES)
    def test_copy_literal_uses_the_canonical_text(self, value, expected):
        assert copy_literal(value) == expected

    def test_encode_row_renders_typed_parameters(self):
        schema = RelationSchema("t", ["a", "b", "c"])
        row = {"a": 1e20, "b": True, "c": NULL}
        assert encode_row(schema, row) == ("1e+20", "True", None)


@pytest.mark.parametrize("make_backend", [SQLiteBackend, fake_postgres_backend])
class TestRoundTrip:
    """Typed values stored through each backend come back value-identical."""

    def test_parameters_round_trip(self, make_backend):
        backend = make_backend()
        backend.execute('CREATE TABLE "t" ("v" TEXT)')
        p = backend.placeholder
        for value, expected in CASES:
            backend.execute(f'INSERT INTO "t" VALUES ({p})', (encode_value(value),))
        stored = [row[0] for row in backend.query('SELECT "v" FROM "t"')]
        assert stored == [expected for _, expected in CASES]
        backend.close()

    def test_raw_typed_parameters_cannot_drift(self, make_backend):
        # The control experiment: hand each backend a *raw* float.  Bare
        # sqlite3 would store its own affinity rendering ('1.0e+20'), so
        # SQLiteBackend relies on the loader encoding first — whereas the
        # PG protocol path encodes parameters itself (a real server would
        # reject a typed parameter against TEXT outright).
        backend = make_backend()
        backend.execute('CREATE TABLE "t" ("v" TEXT)')
        p = backend.placeholder
        backend.execute(f'INSERT INTO "t" VALUES ({p})', (1e20,))
        (raw,) = backend.query('SELECT "v" FROM "t"')[0]
        if isinstance(backend, SQLiteBackend):
            assert raw == "1.0e+20"  # engine affinity, not our canon
        else:
            assert raw == encode_value(1e20)
        backend.close()


def test_both_backends_store_identical_texts():
    stored = {}
    for name, backend in (("sqlite", SQLiteBackend()), ("pg", fake_postgres_backend())):
        backend.execute('CREATE TABLE "t" ("v" TEXT)')
        p = backend.placeholder
        backend.executemany(
            f'INSERT INTO "t" VALUES ({p})',
            [(encode_value(value),) for value, _ in CASES],
        )
        stored[name] = backend.query('SELECT "v" FROM "t"')
        backend.close()
    assert stored["sqlite"] == stored["pg"]
