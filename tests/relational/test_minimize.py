"""Unit tests for the ``minimize`` routine and minimum covers (Section 5)."""

from repro.relational.fd import (
    FunctionalDependency,
    equivalent,
    implies_fd,
    minimize,
    minimum_cover,
    remove_extraneous_attributes,
    remove_redundant_fds,
)


class TestRemoveExtraneousAttributes:
    def test_extraneous_attribute_dropped(self):
        # In {a -> b, a,b -> c}, b is extraneous in the second FD.
        fds = ["a -> b", "a, b -> c"]
        reduced = remove_extraneous_attributes(fds)
        assert FunctionalDependency({"a"}, {"c"}) in reduced

    def test_needed_attributes_kept(self):
        fds = ["a, b -> c"]
        reduced = remove_extraneous_attributes(fds)
        assert reduced == [FunctionalDependency({"a", "b"}, {"c"})]

    def test_result_equivalent_to_input(self):
        fds = ["a -> b", "a, b -> c", "c -> d"]
        assert equivalent(fds, remove_extraneous_attributes(fds))


class TestRemoveRedundantFDs:
    def test_transitively_implied_fd_removed(self):
        fds = ["a -> b", "b -> c", "a -> c"]
        reduced = remove_redundant_fds(fds)
        assert len(reduced) == 2
        assert FunctionalDependency({"a"}, {"c"}) not in reduced

    def test_nothing_removed_when_independent(self):
        fds = ["a -> b", "c -> d"]
        assert len(remove_redundant_fds(fds)) == 2

    def test_result_equivalent_to_input(self):
        fds = ["a -> b", "b -> c", "a -> c", "a -> b"]
        assert equivalent(fds, remove_redundant_fds(fds))


class TestMinimize:
    def test_trivial_fds_dropped(self):
        assert minimize(["a -> a", "a, b -> b"]) == []

    def test_classic_example(self):
        fds = ["a -> b", "b -> c", "a -> c", "a, b -> c"]
        reduced = minimize(fds)
        assert equivalent(fds, reduced)
        assert len(reduced) == 2

    def test_paper_cover_is_already_minimal(self):
        cover = [
            "bookIsbn -> bookTitle",
            "bookIsbn -> authContact",
            "bookIsbn, chapNum -> chapName",
            "bookIsbn, chapNum, secNum -> secName",
        ]
        assert len(minimize(cover)) == 4

    def test_non_redundancy_of_output(self):
        fds = ["a -> b", "b -> c", "a -> c", "c -> a"]
        reduced = minimize(fds)
        for fd in reduced:
            others = [other for other in reduced if other != fd]
            assert not implies_fd(others, fd)

    def test_equivalence_preserved_on_random_style_input(self):
        fds = [
            "a -> b, c",
            "b -> d",
            "c, d -> e",
            "a -> e",
            "e, a -> b",
        ]
        reduced = minimize(fds)
        assert equivalent(fds, reduced)


class TestMinimumCover:
    def test_singleton_rhs_by_default(self):
        cover = minimum_cover(["a -> b, c"])
        assert all(len(fd.rhs) == 1 for fd in cover)

    def test_merge_lhs(self):
        cover = minimum_cover(["a -> b", "a -> c"], merge_lhs=True)
        assert len(cover) == 1
        assert cover[0].rhs == frozenset({"b", "c"})

    def test_equivalent_to_input(self):
        fds = ["a -> b, c", "b -> c", "c -> d", "a, d -> e"]
        assert equivalent(fds, minimum_cover(fds))
        assert equivalent(fds, minimum_cover(fds, merge_lhs=True))
