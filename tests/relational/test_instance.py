"""Unit tests for relation instances, NULL handling and FD checking."""

import pytest

from repro.relational.instance import NULL, RelationInstance, Row, is_null
from repro.relational.schema import RelationSchema


@pytest.fixture()
def chapter_schema():
    return RelationSchema(
        "Chapter", ["bookTitle", "chapterNum", "chapterName"], keys=[{"bookTitle", "chapterNum"}]
    )


@pytest.fixture()
def figure2a(chapter_schema):
    """The instance of Figure 2(a)."""
    return RelationInstance(
        chapter_schema,
        [
            {"bookTitle": "XML", "chapterNum": "1", "chapterName": "Introduction"},
            {"bookTitle": "XML", "chapterNum": "10", "chapterName": "Conclusion"},
            {"bookTitle": "XML", "chapterNum": "1", "chapterName": "Getting Acquainted"},
        ],
    )


class TestNull:
    def test_null_is_singleton(self):
        from repro.relational.instance import NullType

        assert NullType() is NULL

    def test_null_is_falsy_and_never_equal(self):
        assert not NULL
        assert not (NULL == NULL)
        assert not (NULL == "x")

    def test_is_null_accepts_none(self):
        assert is_null(None)
        assert is_null(NULL)
        assert not is_null("")
        assert not is_null("NULL")


class TestRow:
    def test_missing_attributes_default_to_null_via_instance(self, chapter_schema):
        instance = RelationInstance(chapter_schema, [{"bookTitle": "XML"}])
        row = instance.rows[0]
        assert is_null(row["chapterNum"])

    def test_none_normalised_to_null(self):
        row = Row({"a": None, "b": "x"})
        assert is_null(row["a"])

    def test_project_sorted_order(self):
        row = Row({"b": "2", "a": "1"})
        assert row.project({"b", "a"}) == ("1", "2")

    def test_has_null_subset(self):
        row = Row({"a": "1", "b": NULL})
        assert row.has_null()
        assert row.has_null({"b"})
        assert not row.has_null({"a"})

    def test_equality_and_hash_with_nulls(self):
        assert Row({"a": NULL, "b": "1"}) == Row({"a": None, "b": "1"})
        assert hash(Row({"a": NULL})) == hash(Row({"a": None}))
        assert Row({"a": NULL}) != Row({"a": "x"})


class TestInstanceBasics:
    def test_unknown_attribute_rejected(self, chapter_schema):
        instance = RelationInstance(chapter_schema)
        with pytest.raises(ValueError):
            instance.add_row({"unknown": "x"})

    def test_len_and_iteration(self, figure2a):
        assert len(figure2a) == 3
        assert len(list(figure2a)) == 3

    def test_distinct_removes_duplicates(self, chapter_schema):
        instance = RelationInstance(
            chapter_schema,
            [
                {"bookTitle": "XML", "chapterNum": "1", "chapterName": "A"},
                {"bookTitle": "XML", "chapterNum": "1", "chapterName": "A"},
            ],
        )
        assert len(instance.distinct()) == 1

    def test_values_column(self, figure2a):
        assert figure2a.values("chapterNum") == ["1", "10", "1"]

    def test_to_table_renders_all_rows_and_nulls(self, chapter_schema):
        instance = RelationInstance(chapter_schema, [{"bookTitle": "XML"}])
        table = instance.to_table()
        assert "Chapter" in table and "NULL" in table and "bookTitle" in table

    def test_to_table_max_rows(self, figure2a):
        table = figure2a.to_table(max_rows=1)
        assert "more rows" in table


class TestFDSemantics:
    def test_figure2a_violates_its_key(self, figure2a):
        assert not figure2a.satisfies_key()
        violations = figure2a.key_violations()
        assert len(violations) == 1
        assert violations[0].kind == "value-conflict"

    def test_figure2b_satisfies_its_key(self):
        schema = RelationSchema(
            "Chapter", ["isbn", "chapterNum", "chapterName"], keys=[{"isbn", "chapterNum"}]
        )
        instance = RelationInstance(
            schema,
            [
                {"isbn": "123", "chapterNum": "1", "chapterName": "Introduction"},
                {"isbn": "123", "chapterNum": "10", "chapterName": "Conclusion"},
                {"isbn": "234", "chapterNum": "1", "chapterName": "Getting Acquainted"},
            ],
        )
        assert instance.satisfies_key()

    def test_key_violations_requires_declared_key(self):
        schema = RelationSchema("r", ["a"])
        with pytest.raises(ValueError):
            RelationInstance(schema).key_violations()

    def test_condition2_value_conflict(self, chapter_schema):
        instance = RelationInstance(
            chapter_schema,
            [
                {"bookTitle": "A", "chapterNum": "1", "chapterName": "x"},
                {"bookTitle": "A", "chapterNum": "1", "chapterName": "y"},
            ],
        )
        assert not instance.satisfies_fd({"bookTitle", "chapterNum"}, {"chapterName"})

    def test_condition1_null_determinant_with_nonnull_dependent(self, chapter_schema):
        instance = RelationInstance(
            chapter_schema,
            [{"bookTitle": NULL, "chapterNum": "1", "chapterName": "x"}],
        )
        violations = instance.fd_violations({"bookTitle"}, {"chapterName"})
        assert [v.kind for v in violations] == ["null-determinant"]

    def test_condition1_satisfied_when_dependent_also_null(self, chapter_schema):
        instance = RelationInstance(
            chapter_schema,
            [{"bookTitle": NULL, "chapterNum": "1", "chapterName": NULL}],
        )
        assert instance.satisfies_fd({"bookTitle"}, {"chapterName"})

    def test_tuples_with_any_null_are_ignored_for_condition2(self, chapter_schema):
        # Per Section 3, condition (2) only ranges over tuples containing no
        # null at all.  The second tuple below has a null chapterNum, so the
        # apparent conflict on chapterName is not a violation; condition (1)
        # is also fine because its bookTitle (the FD's LHS) is non-null.
        instance = RelationInstance(
            chapter_schema,
            [
                {"bookTitle": "A", "chapterNum": "1", "chapterName": "x"},
                {"bookTitle": "A", "chapterNum": NULL, "chapterName": "y"},
            ],
        )
        assert instance.fd_violations({"bookTitle"}, {"chapterName"}) == []
        # Once the second tuple is null-free the conflict becomes a violation.
        instance.add_row({"bookTitle": "A", "chapterNum": "2", "chapterName": "y"})
        assert not instance.satisfies_fd({"bookTitle"}, {"chapterName"})

    def test_multi_attribute_rhs(self, chapter_schema):
        instance = RelationInstance(
            chapter_schema,
            [
                {"bookTitle": "A", "chapterNum": "1", "chapterName": "x"},
                {"bookTitle": "A", "chapterNum": "2", "chapterName": "x"},
            ],
        )
        assert not instance.satisfies_fd({"bookTitle"}, {"chapterNum", "chapterName"})
        assert instance.satisfies_fd({"bookTitle"}, {"bookTitle"})


class TestMergeableChecking:
    """RelationInstance.merge and the mergeable FD accumulators (PR 4)."""

    def test_merge_concatenates_rows_in_order(self, chapter_schema):
        left = RelationInstance(chapter_schema, [{"bookTitle": "A", "chapterNum": "1"}])
        right = RelationInstance(
            chapter_schema,
            [{"bookTitle": "B", "chapterNum": "2"}, {"bookTitle": "C", "chapterNum": "3"}],
        )
        merged = left.merge(right)
        assert [row.get_value("bookTitle") for row in merged] == ["A", "B", "C"]
        # The inputs are untouched.
        assert len(left) == 1 and len(right) == 2

    def test_merge_rejects_different_schemas(self, chapter_schema):
        other = RelationInstance(RelationSchema("Other", ["x"]))
        with pytest.raises(ValueError):
            RelationInstance(chapter_schema).merge(other)

    def test_merge_of_nothing_is_a_copy(self, figure2a):
        merged = figure2a.merge()
        assert merged.rows == figure2a.rows
        assert merged is not figure2a

    def test_accumulator_matches_fd_violations(self, figure2a):
        from repro.relational.instance import FDViolationAccumulator

        accumulator = FDViolationAccumulator({"bookTitle", "chapterNum"}, {"chapterName"})
        for row in figure2a.rows:
            accumulator.observe(row)
        assert accumulator.finalize() == figure2a.fd_violations(
            {"bookTitle", "chapterNum"}, {"chapterName"}
        )

    def test_split_accumulators_merge_to_serial_answer(self, figure2a):
        from repro.relational.instance import FDViolationAccumulator

        def accumulate(rows):
            piece = FDViolationAccumulator(["bookTitle"], ["chapterName"])
            for row in rows:
                piece.observe(row)
            return piece

        serial = figure2a.fd_violations(["bookTitle"], ["chapterName"])
        for cut in range(len(figure2a.rows) + 1):
            merged = accumulate(figure2a.rows[:cut]).merge(
                accumulate(figure2a.rows[cut:])
            )
            assert merged.finalize() == serial

    def test_cross_piece_duplicate_detected(self, chapter_schema):
        from repro.relational.instance import FDViolationAccumulator

        rows = [
            {"bookTitle": "A", "chapterNum": "1", "chapterName": "X"},
            {"bookTitle": "A", "chapterNum": "1", "chapterName": "Y"},
        ]
        instance = RelationInstance(chapter_schema, rows)
        left = FDViolationAccumulator(["chapterNum"], ["chapterName"])
        left.observe(instance.rows[0])
        right = FDViolationAccumulator(["chapterNum"], ["chapterName"])
        right.observe(instance.rows[1])
        merged = left.merge(right)
        found = merged.finalize()
        assert len(found) == 1
        assert found[0].kind == "value-conflict"
        assert "tuples #0 and #1" in found[0].detail

    def test_merge_rejects_different_fds(self):
        from repro.relational.instance import FDViolationAccumulator

        with pytest.raises(ValueError):
            FDViolationAccumulator(["a"], ["b"]).merge(
                FDViolationAccumulator(["a"], ["c"])
            )
