"""Unit tests for the interned-attribute bitset FD engine."""

import pytest

from repro.relational.bitset import (
    AttributeUniverse,
    BitFDSet,
    closure_fds,
    implies_fds,
    iter_bits,
    minimize_fds,
)
from repro.relational.fd import FunctionalDependency, _resolve_engine, default_engine


def FD(text_or_lhs, rhs=None):
    """Shorthand: FD("a -> b") or FD({"a"}, {"b"})."""
    if rhs is None:
        return FunctionalDependency.parse(text_or_lhs)
    return FunctionalDependency(text_or_lhs, rhs)


class TestIterBits:
    def test_empty_mask(self):
        assert list(iter_bits(0)) == []

    def test_single_bit(self):
        assert list(iter_bits(1 << 7)) == [7]

    def test_lowest_first(self):
        assert list(iter_bits(0b101001)) == [0, 3, 5]

    def test_wide_mask(self):
        mask = (1 << 500) | (1 << 3) | 1
        assert list(iter_bits(mask)) == [0, 3, 500]


class TestAttributeUniverse:
    def test_interning_is_stable(self):
        universe = AttributeUniverse()
        first = universe.intern("a")
        assert universe.intern("b") != first
        assert universe.intern("a") == first

    def test_bits_assigned_in_first_seen_order(self):
        universe = AttributeUniverse(["x", "y", "z"])
        assert [universe.bit_of(name) for name in ("x", "y", "z")] == [0, 1, 2]

    def test_name_of_round_trip(self):
        universe = AttributeUniverse()
        for name in ("alpha", "beta", "gamma"):
            assert universe.name_of(universe.intern(name)) == name

    def test_mask_and_names_round_trip(self):
        universe = AttributeUniverse()
        mask = universe.mask({"a", "b", "c"})
        assert universe.names(mask) == frozenset({"a", "b", "c"})

    def test_mask_accepts_single_string(self):
        universe = AttributeUniverse()
        assert universe.names(universe.mask("solo")) == frozenset({"solo"})

    def test_mask_if_known_rejects_unknown(self):
        universe = AttributeUniverse(["a"])
        assert universe.mask_if_known({"a"}) == 1
        assert universe.mask_if_known({"a", "zzz"}) is None
        assert "zzz" not in universe

    def test_sorted_bits_orders_by_name_not_position(self):
        universe = AttributeUniverse(["z", "a", "m"])
        mask = universe.mask({"z", "a", "m"})
        names = [universe.name_of(bit) for bit in universe.sorted_bits(mask)]
        assert names == ["a", "m", "z"]

    def test_len_contains_iter(self):
        universe = AttributeUniverse(["p", "q"])
        assert len(universe) == 2
        assert "p" in universe and "r" not in universe
        assert list(universe) == ["p", "q"]


class TestClosure:
    def test_empty_fd_set_closure_is_reflexive(self):
        pool = BitFDSet()
        assert pool.closure({"a", "b"}) == frozenset({"a", "b"})

    def test_empty_start_with_no_fds(self):
        pool = BitFDSet()
        assert pool.closure(()) == frozenset()

    def test_chain_closure(self):
        pool = BitFDSet.from_fds([FD("a -> b"), FD("b -> c"), FD("c -> d")])
        assert pool.closure({"a"}) == frozenset("abcd")
        assert pool.closure({"c"}) == frozenset("cd")

    def test_reversed_chain_closure(self):
        fds = [FD(f"a{i} -> a{i + 1}") for i in range(20)]
        fds.reverse()
        pool = BitFDSet.from_fds(fds)
        assert pool.closure({"a0"}) == frozenset(f"a{i}" for i in range(21))

    def test_empty_lhs_fd_always_fires(self):
        pool = BitFDSet.from_fds([FD((), {"c"}), FD("c -> d")])
        assert pool.closure(()) == frozenset({"c", "d"})
        assert pool.closure({"x"}) == frozenset({"x", "c", "d"})

    def test_multi_attribute_lhs_needs_all(self):
        pool = BitFDSet.from_fds([FD("a, b -> c")])
        assert pool.closure({"a"}) == frozenset({"a"})
        assert pool.closure({"a", "b"}) == frozenset({"a", "b", "c"})

    def test_unknown_query_attributes_are_carried_through(self):
        pool = BitFDSet.from_fds([FD("a -> b")])
        assert pool.closure({"a", "mystery"}) == frozenset({"a", "b", "mystery"})

    def test_skip_excludes_one_fd(self):
        pool = BitFDSet.from_fds([FD("a -> b"), FD("a -> c")])
        full = pool.closure_mask(pool.universe.mask({"a"}))
        without_first = pool.closure_mask(pool.universe.mask({"a"}), skip=0)
        assert pool.universe.names(full) == frozenset({"a", "b", "c"})
        assert pool.universe.names(without_first) == frozenset({"a", "c"})

    def test_until_early_exit_is_sound(self):
        pool = BitFDSet.from_fds([FD("a -> b"), FD("b -> c")])
        universe = pool.universe
        target = universe.mask({"b"})
        partial = pool.closure_mask(universe.mask({"a"}), until=target)
        assert target & ~partial == 0

    def test_implies(self):
        pool = BitFDSet.from_fds([FD("a -> b"), FD("b -> c")])
        assert pool.implies(FD("a -> c"))
        assert pool.implies(FD("a, z -> z"))  # reflexivity with unknown attr
        assert not pool.implies(FD("b -> a"))
        assert not pool.implies(FD("a -> unknown"))


class TestMutation:
    def test_replace_trims_lhs_and_closure_follows(self):
        pool = BitFDSet.from_fds([FD("a, b -> c")])
        universe = pool.universe
        pool.replace(0, universe.mask({"a"}), universe.mask({"c"}))
        assert pool.closure({"a"}) == frozenset({"a", "c"})

    def test_stale_index_entries_do_not_misfire(self):
        # After trimming b off "a, b -> c", deriving b must not fire the FD
        # twice nor corrupt the counters for a later closure of {a}.
        pool = BitFDSet.from_fds([FD("a, b -> c"), FD("x -> b")])
        universe = pool.universe
        pool.replace(0, universe.mask({"a"}), universe.mask({"c"}))
        assert pool.closure({"x"}) == frozenset({"x", "b"})
        assert pool.closure({"a"}) == frozenset({"a", "c"})

    def test_replace_with_new_bits_indexes_them(self):
        pool = BitFDSet.from_fds([FD("a -> c")])
        universe = pool.universe
        pool.replace(0, universe.mask({"b"}), universe.mask({"c"}))
        assert pool.closure({"b"}) == frozenset({"b", "c"})
        assert pool.closure({"a"}) == frozenset({"a"})

    def test_deactivate_and_activate(self):
        pool = BitFDSet.from_fds([FD("a -> b")])
        pool.deactivate(0)
        assert pool.closure({"a"}) == frozenset({"a"})
        assert len(pool) == 0
        pool.activate(0)
        assert pool.closure({"a"}) == frozenset({"a", "b"})
        assert len(pool) == 1

    def test_closure_cache_invalidated_by_mutation(self):
        pool = BitFDSet.from_fds([FD("a -> b")])
        assert pool.closure({"a"}) == frozenset({"a", "b"})
        pool.add_fd(FD("b -> c"))
        assert pool.closure({"a"}) == frozenset({"a", "b", "c"})
        pool.deactivate(1)
        assert pool.closure({"a"}) == frozenset({"a", "b"})

    def test_empty_lhs_bookkeeping_across_replace(self):
        pool = BitFDSet.from_fds([FD("a -> b")])
        universe = pool.universe
        pool.replace(0, 0, universe.mask({"b"}))
        assert pool.closure(()) == frozenset({"b"})
        pool.replace(0, universe.mask({"a"}), universe.mask({"b"}))
        assert pool.closure(()) == frozenset()


class TestFunctionalWrappers:
    def test_closure_fds(self):
        assert closure_fds({"a"}, [FD("a -> b")]) == frozenset({"a", "b"})

    def test_closure_fds_empty_pool(self):
        assert closure_fds({"a"}, []) == frozenset({"a"})

    def test_implies_fds(self):
        assert implies_fds([FD("a -> b"), FD("b -> c")], FD("a -> c"))
        assert not implies_fds([], FD("a -> b"))

    def test_minimize_fds_drops_extraneous_and_redundant(self):
        reduced = minimize_fds([FD("a, b -> c"), FD("a -> b"), FD("a -> c")])
        assert FD("a -> b") in reduced
        # "a, b -> c" loses b (extraneous), then collides with "a -> c".
        assert len(reduced) == 2

    def test_minimize_fds_empty(self):
        assert minimize_fds([]) == []


class TestEngineSelection:
    def test_default_is_bitset(self, monkeypatch):
        monkeypatch.delenv("REPRO_FD_ENGINE", raising=False)
        assert default_engine() == "bitset"

    def test_env_var_selects_oracle(self, monkeypatch):
        monkeypatch.setenv("REPRO_FD_ENGINE", "frozenset")
        assert default_engine() == "frozenset"
        monkeypatch.setenv("REPRO_FD_ENGINE", "oracle")
        assert default_engine() == "frozenset"

    def test_keyword_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FD_ENGINE", "frozenset")
        assert _resolve_engine("bitset") == "bitset"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            _resolve_engine("quantum")
