"""Scale smoke test for the hash-grouped instance constraint checks.

PR 3 rewrote ``RelationInstance.fd_violations`` as a single pass with a
hash index from determinant tuples to their first witness.  Behaviour must
be identical to the obvious pairwise definition (checked here against a
quadratic reference on small instances) and the pass must stay linear —
a 20k-row check finishes in well under a second.
"""

import random
import time

from repro.relational.instance import NULL, FDViolation, RelationInstance
from repro.relational.schema import RelationSchema


def pairwise_reference(instance, lhs, rhs):
    """The textbook quadratic check, as an independent oracle."""
    lhs_sorted = sorted(lhs)
    rhs_sorted = sorted(rhs)
    rows = [
        {name: row.get_value(name) for name in instance.schema.attributes}
        for row in instance.rows
    ]

    def has_null(row, names):
        return any(row[name] is NULL for name in names)

    kinds = []
    for row in rows:
        if has_null(row, lhs_sorted) and not has_null(row, rhs_sorted):
            kinds.append("null-determinant")
    for i, first in enumerate(rows):
        if has_null(first, instance.schema.attributes):
            continue
        for second in rows[i + 1 :]:
            if has_null(second, instance.schema.attributes):
                continue
            if [first[a] for a in lhs_sorted] == [second[a] for a in lhs_sorted] and [
                first[a] for a in rhs_sorted
            ] != [second[a] for a in rhs_sorted]:
                kinds.append("value-conflict")
    return kinds


def random_instance(rows, nulls=True, seed=0):
    rng = random.Random(seed)
    schema = RelationSchema("t", ["a", "b", "c"])
    instance = RelationInstance(schema)
    for _ in range(rows):
        instance.add_row(
            {
                "a": rng.choice(["0", "1", "2"]),
                "b": NULL if nulls and rng.random() < 0.2 else rng.choice(["0", "1"]),
                "c": rng.choice(["0", "1"]),
            }
        )
    return instance


class TestHashGroupedViolations:
    def test_matches_pairwise_reference_kind_counts(self):
        # The fast path reports one value-conflict per (group, later row)
        # against the group's first witness; the pairwise oracle reports one
        # per conflicting pair.  Verdicts must agree, and every conflict the
        # fast path names must exist pairwise.
        for seed in range(20):
            instance = random_instance(60, seed=seed)
            fast = instance.fd_violations({"a"}, {"b"})
            reference = pairwise_reference(instance, {"a"}, {"b"})
            assert bool(fast) == bool(reference)
            fast_nulls = [v for v in fast if v.kind == "null-determinant"]
            reference_nulls = [k for k in reference if k == "null-determinant"]
            assert len(fast_nulls) == len(reference_nulls)

    def test_exact_witnesses_on_small_instance(self):
        schema = RelationSchema("t", ["a", "b"])
        instance = RelationInstance(
            schema,
            [
                {"a": "1", "b": "x"},
                {"a": "1", "b": "y"},
                {"a": NULL, "b": "z"},
                {"a": "1", "b": "x"},
                {"a": "2", "b": "w"},
                {"a": "1", "b": "q"},
            ],
        )
        found = instance.fd_violations({"a"}, {"b"})
        assert [v.kind for v in found] == [
            "null-determinant",
            "value-conflict",
            "value-conflict",
        ]
        # Conflicts are reported against the group's first witness (#0).
        assert "#0 and #1" in found[1].detail
        assert "#0 and #5" in found[2].detail

    def test_key_violations_unchanged(self):
        schema = RelationSchema("t", ["a", "b"], keys=[{"a"}])
        instance = RelationInstance(
            schema, [{"a": "1", "b": "x"}, {"a": "1", "b": "y"}]
        )
        assert not instance.satisfies_key()
        assert [v.kind for v in instance.key_violations()] == ["value-conflict"]

    def test_twenty_thousand_rows_stay_linear(self):
        instance = random_instance(20_000, seed=42)
        start = time.perf_counter()
        instance.fd_violations({"a", "b"}, {"c"})
        instance.key_violations({"a", "b", "c"})
        elapsed = time.perf_counter() - start
        # The quadratic pairwise formulation would need ~4e8 comparisons
        # here; the hash-grouped pass does 40k dictionary operations.  The
        # generous bound keeps the test meaningful on slow CI machines.
        assert elapsed < 2.0
