"""The NULL singleton must survive every serialization boundary.

Every null check in the repository is an identity check (``value is
NULL``), so any code path that clones or ships a row — pickling shard
results across process boundaries, ``copy.deepcopy`` of accumulated
state — must hand back the *canonical* singleton, not a second instance
that answers ``False`` to ``is NULL``.  Protocols 0 and 1 used to break
this: their default reduction bypasses ``__new__``'s memo, which is why
``NullType.__reduce__`` exists.
"""

import copy
import pickle
from concurrent.futures import ProcessPoolExecutor

from repro.relational.instance import NULL, NullType, Row


class TestPickleRoundTrips:
    def test_every_protocol_returns_the_singleton(self):
        for protocol in range(pickle.HIGHEST_PROTOCOL + 1):
            clone = pickle.loads(pickle.dumps(NULL, protocol=protocol))
            assert clone is NULL, f"protocol {protocol} forged a second NULL"

    def test_nulls_inside_rows_survive(self):
        # Protocols 2+ only: Row itself is a slots class, which the
        # protocol-0/1 default reduction cannot serialize at all.
        row = Row({"a": "x", "b": NULL})
        for protocol in range(2, pickle.HIGHEST_PROTOCOL + 1):
            clone = pickle.loads(pickle.dumps(row, protocol=protocol))
            assert clone["b"] is NULL
            assert clone.has_null()

    def test_copy_and_deepcopy_return_the_singleton(self):
        assert copy.copy(NULL) is NULL
        assert copy.deepcopy(NULL) is NULL
        assert copy.deepcopy({"a": NULL})["a"] is NULL

    def test_reconstructing_the_class_returns_the_singleton(self):
        assert NullType() is NULL


def _bounce(value):
    """Executed in a worker process: ship the value straight back."""
    return value, value is NULL


class TestProcessBoundary:
    def test_null_identity_survives_a_worker_round_trip(self):
        # The exact seam repro.parallel crosses: arguments pickle on the
        # way out, results pickle on the way back.  Identity must hold on
        # both sides.
        with ProcessPoolExecutor(max_workers=1) as pool:
            returned, identical_in_worker = pool.submit(_bounce, NULL).result()
        assert identical_in_worker, "worker saw a forged NULL"
        assert returned is NULL, "round-tripped NULL is a second instance"
