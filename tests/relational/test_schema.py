"""Unit tests for relation and database schemas."""

import pytest

from repro.relational.schema import DatabaseSchema, RelationSchema, attr_set


class TestAttrSet:
    def test_string_becomes_singleton(self):
        assert attr_set("isbn") == frozenset({"isbn"})

    def test_iterable_preserved(self):
        assert attr_set(["a", "b"]) == frozenset({"a", "b"})

    def test_frozenset_passthrough(self):
        value = frozenset({"a"})
        assert attr_set(value) == value


class TestRelationSchema:
    def test_attributes_keep_declaration_order(self):
        schema = RelationSchema("chapter", ["inBook", "number", "name"])
        assert schema.attributes == ("inBook", "number", "name")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("r", ["a", "a"])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("", ["a"])

    def test_declared_keys(self):
        schema = RelationSchema("chapter", ["inBook", "number", "name"], keys=[{"inBook", "number"}])
        assert schema.primary_key == frozenset({"inBook", "number"})

    def test_key_with_unknown_attribute_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("r", ["a"], keys=[{"b"}])

    def test_add_key_deduplicates(self):
        schema = RelationSchema("r", ["a", "b"])
        schema.add_key({"a"})
        schema.add_key("a")
        assert schema.keys == [frozenset({"a"})]

    def test_primary_key_none_when_no_keys(self):
        assert RelationSchema("r", ["a"]).primary_key is None

    def test_membership_and_iteration(self):
        schema = RelationSchema("r", ["a", "b"])
        assert "a" in schema
        assert "z" not in schema
        assert list(schema) == ["a", "b"]
        assert schema.arity == 2

    def test_describe_marks_primary_key(self):
        schema = RelationSchema("chapter", ["isbn", "num", "name"], keys=[{"isbn", "num"}])
        description = schema.describe()
        assert "isbn*" in description and "num*" in description and "name" in description

    def test_equality(self):
        first = RelationSchema("r", ["a", "b"], keys=[{"a"}])
        second = RelationSchema("r", ["a", "b"], keys=[{"a"}])
        assert first == second


class TestDatabaseSchema:
    def test_add_and_lookup(self):
        db = DatabaseSchema([RelationSchema("book", ["isbn"])])
        assert db.relation("book").name == "book"
        assert "book" in db and "magazine" not in db

    def test_duplicate_relation_rejected(self):
        db = DatabaseSchema([RelationSchema("book", ["isbn"])])
        with pytest.raises(ValueError):
            db.add(RelationSchema("book", ["other"]))

    def test_missing_relation_raises(self):
        with pytest.raises(KeyError):
            DatabaseSchema().relation("nope")

    def test_iteration_and_len(self):
        db = DatabaseSchema([RelationSchema("a", ["x"]), RelationSchema("b", ["y"])])
        assert len(db) == 2
        assert db.relation_names == ["a", "b"]

    def test_describe_lists_all_relations(self):
        db = DatabaseSchema([RelationSchema("a", ["x"]), RelationSchema("b", ["y"])])
        text = db.describe()
        assert "a(x)" in text and "b(y)" in text
