"""Unit tests for functional dependencies, closures and implication."""

import pytest

from repro.relational.fd import (
    FDSet,
    FunctionalDependency,
    attribute_closure,
    coerce_fd,
    equivalent,
    implies_fd,
)


class TestFunctionalDependency:
    def test_parse_arrow_syntax(self):
        fd = FunctionalDependency.parse("isbn, chapterNum -> chapterName")
        assert fd.lhs == frozenset({"isbn", "chapterNum"})
        assert fd.rhs == frozenset({"chapterName"})

    def test_parse_unicode_arrow(self):
        fd = FunctionalDependency.parse("a → b")
        assert fd.lhs == frozenset({"a"})

    def test_parse_rejects_non_fd(self):
        with pytest.raises(ValueError):
            FunctionalDependency.parse("just text")

    def test_empty_rhs_rejected(self):
        with pytest.raises(ValueError):
            FunctionalDependency({"a"}, set())

    def test_empty_lhs_allowed(self):
        fd = FunctionalDependency((), {"a"})
        assert fd.lhs == frozenset()
        assert "∅" in fd.text

    def test_parse_rejects_bare_empty_lhs(self):
        with pytest.raises(ValueError, match="empty left-hand side"):
            FunctionalDependency.parse("-> a")
        with pytest.raises(ValueError, match="empty left-hand side"):
            FunctionalDependency.parse("  →  a, b")

    def test_parse_explicit_empty_lhs_spellings(self):
        for spelling in ("∅ -> a", "{} -> a", "∅ → a"):
            fd = FunctionalDependency.parse(spelling)
            assert fd.lhs == frozenset()
            assert fd.rhs == frozenset({"a"})

    def test_parse_empty_lhs_round_trips_through_text(self):
        fd = FunctionalDependency((), {"a"})
        assert FunctionalDependency.parse(fd.text) == fd

    def test_parse_rejects_empty_marker_mixed_with_attributes(self):
        with pytest.raises(ValueError, match="mixes"):
            FunctionalDependency.parse("∅, b -> a")

    def test_trivial_detection(self):
        assert FunctionalDependency({"a", "b"}, {"a"}).is_trivial
        assert not FunctionalDependency({"a"}, {"b"}).is_trivial

    def test_decompose_singleton_rhs(self):
        fd = FunctionalDependency({"a"}, {"b", "c"})
        parts = fd.decompose()
        assert len(parts) == 2
        assert all(len(part.rhs) == 1 for part in parts)

    def test_equality_and_hash(self):
        assert FunctionalDependency({"a"}, {"b"}) == coerce_fd("a -> b")
        assert hash(FunctionalDependency({"a"}, {"b"})) == hash(coerce_fd("a -> b"))

    def test_coerce_from_pair(self):
        fd = coerce_fd(({"a"}, {"b"}))
        assert fd == FunctionalDependency({"a"}, {"b"})

    def test_text_rendering_sorted(self):
        assert FunctionalDependency({"b", "a"}, {"c"}).text == "a, b -> c"

    def test_attributes_union(self):
        assert FunctionalDependency({"a"}, {"b"}).attributes == frozenset({"a", "b"})


class TestClosure:
    FDS = ["a -> b", "b -> c", "c, d -> e"]

    def test_reflexive_base(self):
        assert attribute_closure({"z"}, self.FDS) == frozenset({"z"})

    def test_chain(self):
        assert attribute_closure({"a"}, self.FDS) == frozenset({"a", "b", "c"})

    def test_multi_attribute_lhs(self):
        assert attribute_closure({"a", "d"}, self.FDS) == frozenset({"a", "b", "c", "d", "e"})

    def test_empty_set_closure(self):
        assert attribute_closure((), ["-> x"] if False else []) == frozenset()

    def test_closure_with_empty_lhs_fd(self):
        fds = [FunctionalDependency((), {"const"}), "const -> x"]
        assert attribute_closure((), fds) == frozenset({"const", "x"})


class TestImplication:
    FDS = ["a -> b", "b -> c"]

    def test_transitivity(self):
        assert implies_fd(self.FDS, "a -> c")

    def test_augmentation(self):
        assert implies_fd(self.FDS, "a, z -> c")

    def test_reflexivity(self):
        assert implies_fd([], "a, b -> a")

    def test_non_implication(self):
        assert not implies_fd(self.FDS, "c -> a")

    def test_union_rule(self):
        assert implies_fd(self.FDS, "a -> b, c")

    def test_equivalent_sets(self):
        first = ["a -> b", "b -> c"]
        second = ["a -> b", "b -> c", "a -> c"]
        assert equivalent(first, second)
        assert not equivalent(first, ["a -> b"])

    def test_equivalent_is_symmetric(self):
        assert equivalent([], [])
        assert not equivalent(["a -> b"], [])


class TestFDSet:
    def test_deduplicates(self):
        fds = FDSet(["a -> b", "a -> b"])
        assert len(fds) == 1

    def test_contains(self):
        fds = FDSet(["a -> b"])
        assert "a -> b" in fds
        assert "a -> c" not in fds

    def test_implies_and_closure(self):
        fds = FDSet(["a -> b", "b -> c"])
        assert fds.implies("a -> c")
        assert fds.closure({"a"}) == frozenset({"a", "b", "c"})

    def test_attributes(self):
        fds = FDSet(["a -> b", "c -> d"])
        assert fds.attributes() == frozenset({"a", "b", "c", "d"})

    def test_minimize_returns_fdset(self):
        fds = FDSet(["a -> b", "b -> c", "a -> c"])
        reduced = fds.minimize()
        assert isinstance(reduced, FDSet)
        assert len(reduced) == 2

    def test_equality(self):
        assert FDSet(["a -> b", "b -> c"]) == FDSet(["b -> c", "a -> b"])

    def test_describe(self):
        assert "a -> b" in FDSet(["a -> b"]).describe()
