"""Unit tests for the relational-algebra module (the Theorem 3.1 boundary)."""

import pytest

from repro.relational import algebra
from repro.relational.instance import NULL, RelationInstance
from repro.relational.schema import RelationSchema


@pytest.fixture()
def books():
    schema = RelationSchema("book", ["isbn", "title"])
    return RelationInstance(
        schema,
        [
            {"isbn": "1", "title": "XML"},
            {"isbn": "2", "title": "XML"},
            {"isbn": "3", "title": "SQL"},
        ],
    )


@pytest.fixture()
def chapters():
    schema = RelationSchema("chapter", ["isbn", "num"])
    return RelationInstance(
        schema,
        [
            {"isbn": "1", "num": "1"},
            {"isbn": "1", "num": "2"},
            {"isbn": "3", "num": "1"},
        ],
    )


class TestProject:
    def test_projection_deduplicates(self, books):
        result = algebra.project(books, ["title"])
        assert sorted(row["title"] for row in result) == ["SQL", "XML"]

    def test_projection_order_of_attributes(self, books):
        result = algebra.project(books, ["title", "isbn"])
        assert result.schema.attributes == ("title", "isbn")

    def test_unknown_attribute_rejected(self, books):
        with pytest.raises(ValueError):
            algebra.project(books, ["missing"])


class TestSelect:
    def test_predicate_filtering(self, books):
        result = algebra.select(books, lambda row: row["title"] == "XML")
        assert len(result) == 2

    def test_empty_selection(self, books):
        assert len(algebra.select(books, lambda row: False)) == 0


class TestProduct:
    def test_cardinality(self, books, chapters):
        assert len(algebra.product(books, chapters)) == 9

    def test_overlapping_attributes_renamed(self, books, chapters):
        result = algebra.product(books, chapters)
        assert "chapter.isbn" in result.schema.attributes


class TestUnionDifference:
    def test_union_deduplicates(self, books):
        assert len(algebra.union(books, books)) == 3

    def test_union_requires_same_schema(self, books, chapters):
        with pytest.raises(ValueError):
            algebra.union(books, chapters)

    def test_difference(self, books):
        xml_only = algebra.select(books, lambda row: row["title"] == "XML")
        rest = algebra.difference(books, xml_only)
        assert sorted(row["isbn"] for row in rest) == ["3"]

    def test_difference_requires_same_schema(self, books, chapters):
        with pytest.raises(ValueError):
            algebra.difference(books, chapters)


class TestNaturalJoin:
    def test_join_on_shared_attribute(self, books, chapters):
        result = algebra.natural_join(books, chapters)
        assert len(result) == 3
        assert set(result.schema.attributes) == {"isbn", "title", "num"}

    def test_nulls_never_join(self, books):
        schema = RelationSchema("extra", ["isbn", "note"])
        extra = RelationInstance(schema, [{"isbn": NULL, "note": "x"}])
        assert len(algebra.natural_join(books, extra)) == 0

    def test_join_without_shared_attributes_is_product(self, books):
        schema = RelationSchema("colour", ["colour"])
        colours = RelationInstance(schema, [{"colour": "red"}, {"colour": "blue"}])
        assert len(algebra.natural_join(books, colours)) == 6


class TestTheoremBoundary:
    def test_unsupported_operators_are_refused_in_the_rule_language(self):
        from repro.transform.validate import UnsupportedFeature, reject_unsupported

        for feature in ("selection", "difference", "foreign-key"):
            with pytest.raises(UnsupportedFeature):
                reject_unsupported(feature)

    def test_unsupported_message_mentions_theorem(self):
        from repro.transform.validate import UnsupportedFeature, reject_unsupported

        with pytest.raises(UnsupportedFeature, match="undecidable"):
            reject_unsupported("difference")
