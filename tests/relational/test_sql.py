"""Unit tests for SQL DDL/DML emission."""

import sqlite3

import pytest

from repro.relational.instance import NULL, RelationInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.sql import (
    create_schema,
    create_table,
    insert_statements,
    load_script,
    quote_identifier,
    quote_literal,
)


@pytest.fixture()
def chapter_schema():
    return RelationSchema(
        "chapter", ["inBook", "number", "name"], keys=[{"inBook", "number"}]
    )


@pytest.fixture()
def chapter_instance(chapter_schema):
    return RelationInstance(
        chapter_schema,
        [
            {"inBook": "123", "number": "1", "name": "Introduction"},
            {"inBook": "123", "number": "10", "name": "O'Connor's chapter"},
            {"inBook": "234", "number": "1", "name": NULL},
        ],
    )


class TestQuoting:
    def test_identifier_quoting(self):
        assert quote_identifier("name") == '"name"'
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_literal_quoting(self):
        assert quote_literal("x") == "'x'"
        assert quote_literal("O'Connor") == "'O''Connor'"
        assert quote_literal(NULL) == "NULL"
        assert quote_literal(None) == "NULL"


class TestCreateTable:
    def test_columns_and_primary_key(self, chapter_schema):
        ddl = create_table(chapter_schema)
        assert ddl.startswith('CREATE TABLE "chapter"')
        assert '"inBook" TEXT' in ddl
        assert 'PRIMARY KEY ("inBook", "number")' in ddl
        assert ddl.rstrip().endswith(");")

    def test_additional_keys_become_unique(self):
        schema = RelationSchema("book", ["isbn", "isbn13"], keys=[{"isbn"}, {"isbn13"}])
        ddl = create_table(schema)
        assert 'PRIMARY KEY ("isbn")' in ddl
        assert 'UNIQUE ("isbn13")' in ddl

    def test_no_key_no_constraint(self):
        ddl = create_table(RelationSchema("r", ["a"]))
        assert "PRIMARY KEY" not in ddl

    def test_if_not_exists_and_custom_type(self, chapter_schema):
        ddl = create_table(chapter_schema, column_type="VARCHAR(100)", if_not_exists=True)
        assert "IF NOT EXISTS" in ddl
        assert "VARCHAR(100)" in ddl

    def test_create_schema_emits_all_tables(self, chapter_schema):
        db = DatabaseSchema([chapter_schema, RelationSchema("book", ["isbn"], keys=[{"isbn"}])])
        ddl = create_schema(db)
        assert ddl.count("CREATE TABLE") == 2


class TestInserts:
    def test_one_statement_per_row(self, chapter_instance):
        statements = insert_statements(chapter_instance)
        assert len(statements) == 3
        assert statements[0].startswith('INSERT INTO "chapter"')
        assert "NULL" in statements[2]

    def test_quotes_escaped(self, chapter_instance):
        statements = insert_statements(chapter_instance)
        assert "O''Connor''s chapter" in statements[1]

    def test_batch_mode(self, chapter_instance):
        statements = insert_statements(chapter_instance, batch=True)
        assert len(statements) == 1
        assert statements[0].count("(") >= 4  # column list + three tuples

    def test_empty_instance_no_statements(self, chapter_schema):
        assert insert_statements(RelationInstance(chapter_schema)) == []


class TestExecutableAgainstSQLite:
    def test_generated_script_loads_figure1(self, figure1, paper_keys):
        """The script produced from the paper's refined design must actually
        run on a real SQL engine (sqlite3 from the standard library)."""
        from repro.design import design_from_scratch
        from repro.experiments.paper_example import universal_relation
        from repro.transform import evaluate_transformation

        design = design_from_scratch(paper_keys, universal_relation())
        instances = evaluate_transformation(design.transformation, figure1, schema=design.schema)
        script = load_script(design.schema, instances)

        connection = sqlite3.connect(":memory:")
        connection.executescript(script)
        for relation in design.schema:
            count = connection.execute(
                f'SELECT COUNT(*) FROM "{relation.name}"'
            ).fetchone()[0]
            assert count == len(instances[relation.name])
        connection.close()

    def test_primary_key_enforced_by_engine(self, chapter_schema, chapter_instance):
        connection = sqlite3.connect(":memory:")
        connection.executescript(create_table(chapter_schema))
        for statement in insert_statements(chapter_instance):
            connection.execute(statement)
        with pytest.raises(sqlite3.IntegrityError):
            connection.execute(
                "INSERT INTO \"chapter\" (\"inBook\", \"number\", \"name\") "
                "VALUES ('123', '1', 'Duplicate')"
            )
        connection.close()


HOSTILE_NAMES = [
    'we"ird',
    "sp ace",
    "select",
    "semi;colon",
    "x'); DROP TABLE t; --",
    "läbel",
]


class TestHostileIdentifiers:
    """Identifier handling must survive names chosen by the document author.

    Table and column names come straight from documents (tags, attribute
    names), so the emission layer has to treat them as hostile: everything
    executes against a real engine here, round-tripping the values back out.
    """

    def _schema(self):
        return RelationSchema("tab;le--", HOSTILE_NAMES, keys=[{HOSTILE_NAMES[0]}])

    def test_create_insert_roundtrip(self):
        schema = self._schema()
        instance = RelationInstance(
            schema,
            [
                {name: f"v'{i}" for i, name in enumerate(HOSTILE_NAMES)},
                {name: NULL for name in HOSTILE_NAMES},
            ],
        )
        connection = sqlite3.connect(":memory:")
        connection.executescript(create_table(schema))
        for statement in insert_statements(instance):
            connection.execute(statement)
        count = connection.execute('SELECT COUNT(*) FROM "tab;le--"').fetchone()[0]
        assert count == 2
        # No stray table may have been created by a breakout.
        names = {
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        assert names == {"tab;le--"}
        connection.close()

    def test_parameterized_template_roundtrip(self):
        from repro.relational.sql import encode_row, insert_template

        schema = self._schema()
        row = {name: f"v\"1'; --{i}" for i, name in enumerate(HOSTILE_NAMES)}
        connection = sqlite3.connect(":memory:")
        connection.executescript(create_table(schema))
        connection.execute(insert_template(schema), encode_row(schema, row))
        fetched = connection.execute(
            "SELECT " + ", ".join(quote_identifier(n) for n in schema.attributes)
            + ' FROM "tab;le--"'
        ).fetchone()
        assert list(fetched) == [row[name] for name in schema.attributes]
        connection.close()

    def test_nul_bytes_rejected(self):
        with pytest.raises(ValueError):
            quote_identifier("bad\x00name")
        with pytest.raises(ValueError):
            quote_literal("bad\x00value")

    def test_nul_value_survives_parameterized_path(self):
        """What the literal path must reject, the parameter path preserves."""
        from repro.relational.sql import encode_row, insert_template

        schema = RelationSchema("t", ["a"])
        connection = sqlite3.connect(":memory:")
        connection.executescript(create_table(schema))
        connection.execute(insert_template(schema), encode_row(schema, {"a": "x\x00y"}))
        assert connection.execute('SELECT "a" FROM "t"').fetchone()[0] == "x\x00y"
        connection.close()


class TestParameterBatches:
    def test_batches_and_null_encoding(self, chapter_schema):
        from repro.relational.sql import iter_parameter_batches

        rows = [
            {"inBook": "1", "number": str(i), "name": NULL if i % 2 else f"n{i}"}
            for i in range(5)
        ]
        batches = list(iter_parameter_batches(chapter_schema, rows, batch_size=2))
        assert [len(batch) for batch in batches] == [2, 2, 1]
        assert batches[0][1] == ("1", "1", None)

    def test_extra_values_appended(self, chapter_schema):
        from repro.relational.sql import encode_row, insert_template

        params = encode_row(
            chapter_schema,
            {"inBook": "1", "number": "2", "name": "x"},
            extra_values=("doc0",),
        )
        assert params == ("1", "2", "x", "doc0")
        template = insert_template(chapter_schema, extra_columns=["_document"])
        assert template.count("?") == 4
        assert '"_document"' in template

    def test_bad_batch_size_rejected(self, chapter_schema):
        from repro.relational.sql import iter_parameter_batches

        with pytest.raises(ValueError):
            list(iter_parameter_batches(chapter_schema, [], batch_size=0))
