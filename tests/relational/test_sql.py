"""Unit tests for SQL DDL/DML emission."""

import sqlite3

import pytest

from repro.relational.instance import NULL, RelationInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.sql import (
    create_schema,
    create_table,
    insert_statements,
    load_script,
    quote_identifier,
    quote_literal,
)


@pytest.fixture()
def chapter_schema():
    return RelationSchema(
        "chapter", ["inBook", "number", "name"], keys=[{"inBook", "number"}]
    )


@pytest.fixture()
def chapter_instance(chapter_schema):
    return RelationInstance(
        chapter_schema,
        [
            {"inBook": "123", "number": "1", "name": "Introduction"},
            {"inBook": "123", "number": "10", "name": "O'Connor's chapter"},
            {"inBook": "234", "number": "1", "name": NULL},
        ],
    )


class TestQuoting:
    def test_identifier_quoting(self):
        assert quote_identifier("name") == '"name"'
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_literal_quoting(self):
        assert quote_literal("x") == "'x'"
        assert quote_literal("O'Connor") == "'O''Connor'"
        assert quote_literal(NULL) == "NULL"
        assert quote_literal(None) == "NULL"


class TestCreateTable:
    def test_columns_and_primary_key(self, chapter_schema):
        ddl = create_table(chapter_schema)
        assert ddl.startswith('CREATE TABLE "chapter"')
        assert '"inBook" TEXT' in ddl
        assert 'PRIMARY KEY ("inBook", "number")' in ddl
        assert ddl.rstrip().endswith(");")

    def test_additional_keys_become_unique(self):
        schema = RelationSchema("book", ["isbn", "isbn13"], keys=[{"isbn"}, {"isbn13"}])
        ddl = create_table(schema)
        assert 'PRIMARY KEY ("isbn")' in ddl
        assert 'UNIQUE ("isbn13")' in ddl

    def test_no_key_no_constraint(self):
        ddl = create_table(RelationSchema("r", ["a"]))
        assert "PRIMARY KEY" not in ddl

    def test_if_not_exists_and_custom_type(self, chapter_schema):
        ddl = create_table(chapter_schema, column_type="VARCHAR(100)", if_not_exists=True)
        assert "IF NOT EXISTS" in ddl
        assert "VARCHAR(100)" in ddl

    def test_create_schema_emits_all_tables(self, chapter_schema):
        db = DatabaseSchema([chapter_schema, RelationSchema("book", ["isbn"], keys=[{"isbn"}])])
        ddl = create_schema(db)
        assert ddl.count("CREATE TABLE") == 2


class TestInserts:
    def test_one_statement_per_row(self, chapter_instance):
        statements = insert_statements(chapter_instance)
        assert len(statements) == 3
        assert statements[0].startswith('INSERT INTO "chapter"')
        assert "NULL" in statements[2]

    def test_quotes_escaped(self, chapter_instance):
        statements = insert_statements(chapter_instance)
        assert "O''Connor''s chapter" in statements[1]

    def test_batch_mode(self, chapter_instance):
        statements = insert_statements(chapter_instance, batch=True)
        assert len(statements) == 1
        assert statements[0].count("(") >= 4  # column list + three tuples

    def test_empty_instance_no_statements(self, chapter_schema):
        assert insert_statements(RelationInstance(chapter_schema)) == []


class TestExecutableAgainstSQLite:
    def test_generated_script_loads_figure1(self, figure1, paper_keys):
        """The script produced from the paper's refined design must actually
        run on a real SQL engine (sqlite3 from the standard library)."""
        from repro.design import design_from_scratch
        from repro.experiments.paper_example import universal_relation
        from repro.transform import evaluate_transformation

        design = design_from_scratch(paper_keys, universal_relation())
        instances = evaluate_transformation(design.transformation, figure1, schema=design.schema)
        script = load_script(design.schema, instances)

        connection = sqlite3.connect(":memory:")
        connection.executescript(script)
        for relation in design.schema:
            count = connection.execute(
                f'SELECT COUNT(*) FROM "{relation.name}"'
            ).fetchone()[0]
            assert count == len(instances[relation.name])
        connection.close()

    def test_primary_key_enforced_by_engine(self, chapter_schema, chapter_instance):
        connection = sqlite3.connect(":memory:")
        connection.executescript(create_table(chapter_schema))
        for statement in insert_statements(chapter_instance):
            connection.execute(statement)
        with pytest.raises(sqlite3.IntegrityError):
            connection.execute(
                "INSERT INTO \"chapter\" (\"inBook\", \"number\", \"name\") "
                "VALUES ('123', '1', 'Duplicate')"
            )
        connection.close()
