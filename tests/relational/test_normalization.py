"""Unit tests for candidate keys, FD projection, BCNF and 3NF."""

import pytest

from repro.relational.fd import FunctionalDependency, attribute_closure, equivalent, implies_fd
from repro.relational.normalization import (
    bcnf_decompose,
    candidate_keys,
    is_3nf,
    is_bcnf,
    is_superkey,
    project_fds,
    synthesize_3nf,
)


class TestCandidateKeys:
    def test_single_key(self):
        keys = candidate_keys({"a", "b", "c"}, ["a -> b", "a -> c"])
        assert keys == [frozenset({"a"})]

    def test_composite_key(self):
        keys = candidate_keys({"a", "b", "c"}, ["a, b -> c"])
        assert keys == [frozenset({"a", "b"})]

    def test_multiple_keys(self):
        keys = candidate_keys({"a", "b", "c"}, ["a -> b", "b -> a", "a -> c"])
        assert frozenset({"a"}) in keys and frozenset({"b"}) in keys

    def test_no_fds_whole_schema_is_key(self):
        assert candidate_keys({"a", "b"}, []) == [frozenset({"a", "b"})]

    def test_keys_are_minimal(self):
        keys = candidate_keys({"a", "b", "c", "d"}, ["a -> b, c, d"])
        assert keys == [frozenset({"a"})]

    def test_limit(self):
        keys = candidate_keys({"a", "b", "c"}, ["a -> b, c", "b -> a, c", "c -> a, b"], limit=2)
        assert len(keys) == 2

    def test_is_superkey(self):
        assert is_superkey({"a"}, {"a", "b"}, ["a -> b"])
        assert not is_superkey({"b"}, {"a", "b"}, ["a -> b"])


class TestProjectFDs:
    def test_projection_hides_intermediate_attribute(self):
        # a -> b -> c projected on {a, c} yields a -> c.
        projected = project_fds({"a", "c"}, ["a -> b", "b -> c"])
        assert implies_fd(projected, "a -> c")

    def test_projection_only_mentions_projected_attributes(self):
        projected = project_fds({"a", "c"}, ["a -> b", "b -> c"])
        mentioned = set()
        for fd in projected:
            mentioned |= fd.attributes
        assert mentioned <= {"a", "c"}

    def test_projection_of_unrelated_attributes_is_empty(self):
        assert project_fds({"x", "y"}, ["a -> b"]) == []

    def test_unminimised_projection_contains_more(self):
        raw = project_fds({"a", "b", "c"}, ["a -> b", "b -> c"], minimize_result=False)
        minimised = project_fds({"a", "b", "c"}, ["a -> b", "b -> c"])
        assert len(raw) >= len(minimised)


class TestNormalFormPredicates:
    def test_bcnf_positive(self):
        assert is_bcnf({"a", "b"}, ["a -> b"])

    def test_bcnf_negative(self):
        assert not is_bcnf({"a", "b", "c"}, ["a -> b, c", "b -> c"])

    def test_trivial_fds_do_not_violate(self):
        assert is_bcnf({"a", "b"}, ["a, b -> a"])

    def test_3nf_allows_prime_dependencies(self):
        # Classic: city, street -> zip; zip -> city is 3NF but not BCNF.
        fds = ["city, street -> zip", "zip -> city"]
        attrs = {"city", "street", "zip"}
        assert is_3nf(attrs, fds)
        assert not is_bcnf(attrs, fds)

    def test_3nf_negative(self):
        assert not is_3nf({"a", "b", "c"}, ["a -> b", "b -> c"])


class TestBCNFDecomposition:
    def test_already_bcnf_is_left_alone(self):
        fragments = bcnf_decompose("r", ["a", "b"], ["a -> b"])
        assert len(fragments) == 1
        assert set(fragments[0].attributes) == {"a", "b"}

    def test_simple_split(self):
        fragments = bcnf_decompose("r", ["a", "b", "c"], ["b -> c"])
        attribute_sets = [set(f.attributes) for f in fragments]
        assert {"b", "c"} in attribute_sets
        assert any({"a", "b"} <= s for s in attribute_sets)

    def test_every_fragment_is_bcnf(self):
        fds = ["a -> b", "b -> c", "c, d -> e"]
        fragments = bcnf_decompose("r", ["a", "b", "c", "d", "e"], fds)
        for fragment in fragments:
            local = project_fds(fragment.attributes, fds)
            assert is_bcnf(fragment.attributes, local)

    def test_fragments_cover_all_attributes(self):
        attrs = ["a", "b", "c", "d"]
        fragments = bcnf_decompose("r", attrs, ["a -> b", "c -> d"])
        covered = set()
        for fragment in fragments:
            covered |= set(fragment.attributes)
        assert covered == set(attrs)

    def test_fragments_carry_keys(self):
        fragments = bcnf_decompose("r", ["a", "b", "c"], ["a -> b, c"])
        assert all(fragment.keys for fragment in fragments)

    def test_paper_universal_relation_decomposition(self):
        attrs = [
            "bookIsbn",
            "bookTitle",
            "bookAuthor",
            "authContact",
            "chapNum",
            "chapName",
            "secNum",
            "secName",
        ]
        cover = [
            "bookIsbn -> bookTitle",
            "bookIsbn -> authContact",
            "bookIsbn, chapNum -> chapName",
            "bookIsbn, chapNum, secNum -> secName",
        ]
        fragments = bcnf_decompose("U", attrs, cover)
        attribute_sets = [set(f.attributes) for f in fragments]
        # The decomposition of Example 3.1 (book / chapter / section fragments
        # plus one holding the remaining author information).
        assert {"bookIsbn", "bookTitle", "authContact"} in attribute_sets
        assert {"bookIsbn", "chapNum", "chapName"} in attribute_sets
        assert {"bookIsbn", "chapNum", "secNum", "secName"} in attribute_sets
        for fragment in fragments:
            local = project_fds(fragment.attributes, cover)
            assert is_bcnf(fragment.attributes, local)


class TestThirdNormalForm:
    def test_synthesis_groups_by_lhs(self):
        fragments = synthesize_3nf("r", ["a", "b", "c"], ["a -> b", "a -> c"])
        assert any(set(f.attributes) == {"a", "b", "c"} for f in fragments)

    def test_synthesis_adds_key_relation_when_needed(self):
        fragments = synthesize_3nf("r", ["a", "b", "c"], ["a -> b"])
        covered = set()
        for fragment in fragments:
            covered |= set(fragment.attributes)
        assert covered == {"a", "b", "c"}
        # Some fragment must contain a candidate key of the whole relation
        # ({a, c} here) to guarantee a lossless join.
        assert any({"a", "c"} <= set(f.attributes) for f in fragments)

    def test_every_fragment_is_3nf(self):
        fds = ["a -> b", "b -> c"]
        fragments = synthesize_3nf("r", ["a", "b", "c"], fds)
        for fragment in fragments:
            local = project_fds(fragment.attributes, fds)
            assert is_3nf(fragment.attributes, local)
