"""Exposition tests: table, JSON and Prometheus renderings."""

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.render import render_json, render_prometheus, render_table


def _snapshot():
    registry = MetricsRegistry()
    registry.inc("service.uploads", 2, tenant="acme")
    registry.inc("service.uploads", 1, tenant="beta")
    registry.gauge_set("service.queue_depth", 3, tenant="acme")
    registry.declare_buckets("load.batch_seconds", (0.1, 1.0))
    registry.observe("load.batch_seconds", 0.05)
    registry.observe("load.batch_seconds", 0.5)
    registry.observe("load.batch_seconds", 5.0)
    return registry.snapshot()


class TestPrometheus:
    def test_counter_names_gain_prefix_and_total(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_service_uploads_total counter" in text
        assert 'repro_service_uploads_total{tenant="acme"} 2' in text
        assert 'repro_service_uploads_total{tenant="beta"} 1' in text

    def test_gauges_render_without_total_suffix(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert 'repro_service_queue_depth{tenant="acme"} 3' in text

    def test_histograms_expand_with_cumulative_le(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_load_batch_seconds histogram" in text
        assert 'repro_load_batch_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_load_batch_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_load_batch_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_load_batch_seconds_count 3" in text
        assert "repro_load_batch_seconds_sum" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.inc("x", path='a"b\\c')
        text = render_prometheus(registry.snapshot())
        assert 'path="a\\"b\\\\c"' in text

    def test_metric_name_sanitization(self):
        registry = MetricsRegistry()
        registry.inc("shred.rows-emitted")
        text = render_prometheus(registry.snapshot())
        assert "repro_shred_rows_emitted_total 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""

    def test_output_ends_with_newline(self):
        assert render_prometheus(_snapshot()).endswith("\n")


class TestJson:
    def test_envelope_schema_and_sections(self):
        doc = json.loads(render_json(_snapshot()))
        assert doc["schema"] == "repro-stats/1"
        assert {"counters", "gauges", "histograms"} <= set(doc)

    def test_counter_records_carry_labels(self):
        doc = json.loads(render_json(_snapshot()))
        uploads = [
            c for c in doc["counters"] if c["name"] == "service.uploads"
        ]
        assert {"tenant": "acme"} in [c["labels"] for c in uploads]
        assert sum(c["value"] for c in uploads) == 3

    def test_histogram_records_have_inf_bucket(self):
        doc = json.loads(render_json(_snapshot()))
        hist = doc["histograms"][0]
        assert hist["name"] == "load.batch_seconds"
        assert hist["count"] == 3
        assert hist["buckets"][-1]["le"] == "+inf"


class TestTable:
    def test_rows_are_aligned_and_typed(self):
        text = render_table(_snapshot())
        lines = text.splitlines()
        assert lines[0].split() == ["metric", "labels", "type", "value"]
        assert any(
            "service.uploads" in line and "tenant=acme" in line
            and "counter" in line
            for line in lines
        )
        assert any(
            "load.batch_seconds" in line and "count=3" in line
            for line in lines
        )

    def test_empty_snapshot_has_a_placeholder(self):
        text = render_table(MetricsRegistry().snapshot())
        assert text == "(no metrics recorded)"
