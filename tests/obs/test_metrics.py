"""Unit tests for the mergeable-metrics layer (:mod:`repro.obs.metrics`).

The snapshot algebra is the load-bearing promise of the observability
plane: per-shard metrics merge into totals identical to a serial run and
per-delta snapshots subtract cleanly, which only works if ``merge`` is
associative/commutative with ``subtract`` as its exact inverse.
"""

import pickle
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    HistogramState,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestRegistryBasics:
    def test_counters_accumulate_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("service.uploads", tenant="acme")
        registry.inc("service.uploads", tenant="acme")
        registry.inc("service.uploads", 3, tenant="beta")
        snap = registry.snapshot()
        assert snap.counter("service.uploads", tenant="acme") == 2
        assert snap.counter("service.uploads", tenant="beta") == 3
        assert snap.counter("service.uploads") == 0  # unlabelled series

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        registry.inc("x", a="1", b="2")
        registry.inc("x", b="2", a="1")
        assert registry.snapshot().counter("x", a="1", b="2") == 2

    def test_gauges_set_and_add(self):
        registry = MetricsRegistry()
        registry.gauge_set("pool.size", 3)
        registry.gauge_add("pool.size", 2)
        registry.gauge_add("pool.size", -1)
        assert registry.snapshot().gauge("pool.size") == 4

    def test_histogram_observations_land_in_buckets(self):
        registry = MetricsRegistry()
        registry.observe("stage.seconds", 0.003)
        registry.observe("stage.seconds", 0.003)
        registry.observe("stage.seconds", 1000.0)  # overflow bucket
        state = registry.snapshot().histogram("stage.seconds")
        assert state.count == 3
        assert state.buckets == DEFAULT_BUCKETS
        assert sum(state.counts) == 3
        assert state.counts[-1] == 1  # the +inf slot
        assert state.total == pytest.approx(1000.006)

    def test_declared_buckets_override_the_default(self):
        registry = MetricsRegistry()
        registry.declare_buckets("rows.per_batch", (10, 100, 1000))
        registry.observe("rows.per_batch", 50)
        state = registry.snapshot().histogram("rows.per_batch")
        assert state.buckets == (10.0, 100.0, 1000.0)
        assert state.counts == (0, 1, 0, 0)

    def test_declare_buckets_rejects_empty(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.declare_buckets("x", ())

    def test_timer_observes_elapsed_seconds(self):
        registry = MetricsRegistry()
        with registry.time("stage.seconds", stage="noop"):
            pass
        state = registry.snapshot().histogram("stage.seconds", stage="noop")
        assert state is not None and state.count == 1

    def test_clear_resets_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.gauge_set("b", 1)
        registry.observe("c", 0.1)
        registry.clear()
        assert registry.snapshot().is_empty

    def test_snapshot_is_isolated_from_later_mutation(self):
        registry = MetricsRegistry()
        registry.inc("a")
        snap = registry.snapshot()
        registry.inc("a")
        assert snap.counter("a") == 1
        assert registry.snapshot().counter("a") == 2

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        threads = 8
        per_thread = 2000

        def worker():
            for _ in range(per_thread):
                registry.inc("hits")

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=30)
        assert registry.snapshot().counter("hits") == threads * per_thread


class TestSnapshotAlgebra:
    def _sample(self, scale=1):
        registry = MetricsRegistry()
        registry.inc("events", 10 * scale)
        registry.inc("rows", 3 * scale, table="book")
        registry.gauge_add("depth", 2 * scale, tenant="acme")
        for _ in range(scale):
            registry.observe("seconds", 0.25)
        return registry.snapshot()

    def test_merge_is_commutative(self):
        a, b = self._sample(1), self._sample(5)
        assert a.merge(b) == b.merge(a)

    def test_merge_is_associative(self):
        a, b, c = self._sample(1), self._sample(2), self._sample(3)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_empty_snapshot_is_the_identity(self):
        a = self._sample(4)
        empty = MetricsSnapshot()
        assert a.merge(empty) == a
        assert empty.merge(a) == a

    def test_subtract_inverts_merge_exactly(self):
        a, b = self._sample(3), self._sample(7)
        assert a.merge(b).subtract(b) == a
        assert a.merge(b).subtract(a) == b

    def test_subtract_to_zero_equals_empty(self):
        a = self._sample(2)
        assert a.subtract(a) == MetricsSnapshot()
        assert a.subtract(a).is_empty

    def test_histogram_sum_is_exact_under_merge_subtract(self):
        # 0.1 is not representable in binary floating point; the
        # nanounit integer sum keeps subtract exact where a float
        # accumulator would drift.
        registry = MetricsRegistry()
        for _ in range(1000):
            registry.observe("seconds", 0.1)
        a = registry.snapshot()
        merged = a.merge(a).merge(a)
        back = merged.subtract(a).subtract(a)
        assert back == a
        assert back.histogram("seconds").nanos == a.histogram("seconds").nanos

    def test_zero_entries_do_not_break_equality(self):
        explicit = MetricsSnapshot(
            counters={("dead", ()): 0.0},
            gauges={("level", ()): 0.0},
            histograms={("h", ()): HistogramState.empty((1.0,))},
        )
        assert explicit == MetricsSnapshot()
        assert explicit.is_empty

    def test_incompatible_histogram_buckets_refuse_to_merge(self):
        a = HistogramState.empty((1.0, 2.0)).observe(0.5)
        b = HistogramState.empty((5.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)
        with pytest.raises(ValueError):
            a.subtract(b)

    def test_merge_snapshot_folds_into_registry(self):
        shard = MetricsRegistry()
        shard.inc("events", 4)
        shard.observe("seconds", 0.5)
        total = MetricsRegistry()
        total.inc("events", 1)
        total.merge_snapshot(shard.snapshot())
        total.merge_snapshot(shard.snapshot())
        snap = total.snapshot()
        assert snap.counter("events") == 9
        assert snap.histogram("seconds").count == 2

    def test_snapshots_pickle_round_trip(self):
        # Shard workers ship snapshots across process boundaries.
        a = self._sample(6)
        assert pickle.loads(pickle.dumps(a)) == a

    def test_accessor_defaults(self):
        empty = MetricsSnapshot()
        assert empty.counter("missing") == 0.0
        assert empty.gauge("missing") == 0.0
        assert empty.histogram("missing") is None
