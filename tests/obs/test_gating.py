"""The module-level switch: enable/disable, scoped collection, tracing.

The disabled-mode contract is that instrumented call sites never branch:
``obs.metrics()`` hands back the shared :class:`NullRegistry` whose
mutators fall through, and ``trace(...)`` hands back a shared no-op
span.  These tests pin that contract plus the save/restore semantics of
``obs.collect`` that the CLI stats flags and shard workers depend on.
"""

import subprocess
import sys

import pytest

from repro import obs
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry


@pytest.fixture(autouse=True)
def _restore_ambient_state():
    """Leave the process-wide switch exactly as each test found it."""
    was_enabled, registry = obs._enabled, obs._registry
    yield
    obs._enabled, obs._registry = was_enabled, registry


class TestSwitch:
    def test_disabled_metrics_returns_the_shared_noop(self):
        obs.disable()
        assert obs.metrics() is NULL_REGISTRY
        assert not obs.enabled()

    def test_null_registry_mutators_fall_through(self):
        null = NullRegistry()
        null.inc("a")
        null.gauge_set("b", 1)
        null.gauge_add("b", 1)
        null.observe("c", 0.5)
        null.declare_buckets("c", (1.0,))
        with null.time("c"):
            pass
        null.merge_snapshot(MetricsRegistry().snapshot())
        assert null.snapshot().is_empty

    def test_enable_installs_and_returns_a_registry(self):
        registry = MetricsRegistry()
        assert obs.enable(registry) is registry
        assert obs.enabled()
        assert obs.metrics() is registry
        obs.disable()
        assert obs.metrics() is NULL_REGISTRY

    def test_disable_keeps_accumulated_state(self):
        registry = obs.enable(MetricsRegistry())
        registry.inc("kept")
        obs.disable()
        obs.enable()
        assert obs.metrics().snapshot().counter("kept") == 1


class TestCollect:
    def test_collect_installs_a_fresh_registry_and_restores(self):
        obs.disable()
        with obs.collect() as registry:
            assert obs.enabled()
            assert obs.metrics() is registry
            obs.metrics().inc("inner")
        assert not obs.enabled()
        assert registry.snapshot().counter("inner") == 1

    def test_collect_accepts_an_explicit_registry(self):
        mine = MetricsRegistry()
        with obs.collect(mine) as registry:
            assert registry is mine

    def test_collect_nests(self):
        with obs.collect() as outer:
            obs.metrics().inc("events")
            with obs.collect() as inner:
                obs.metrics().inc("events", 5)
            assert obs.metrics() is outer
            outer.merge_snapshot(inner.snapshot())
            obs.metrics().inc("events")
        assert outer.snapshot().counter("events") == 7

    def test_collect_restores_on_exception(self):
        obs.disable()
        with pytest.raises(RuntimeError):
            with obs.collect():
                raise RuntimeError("boom")
        assert not obs.enabled()


class TestEnvGating:
    def _probe(self, env_value):
        code = (
            "import sys; from repro import obs; "
            "sys.stdout.write('on' if obs.enabled() else 'off')"
        )
        import os

        env = dict(os.environ, PYTHONPATH="src")
        if env_value is None:
            env.pop(obs.METRICS_ENV, None)
        else:
            env[obs.METRICS_ENV] = env_value
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert out.returncode == 0, out.stderr
        return out.stdout

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values_enable_at_import(self, value):
        assert self._probe(value) == "on"

    @pytest.mark.parametrize("value", [None, "", "0", "false", "off "])
    def test_everything_else_stays_off(self, value):
        assert self._probe(value) == "off"


class TestTrace:
    def test_disabled_trace_is_the_shared_noop(self):
        obs.disable()
        assert obs.trace("stage.one") is obs.trace("stage.two")

    def test_enabled_trace_records_seconds_and_calls(self):
        with obs.collect() as registry:
            with obs.trace("shred.document", table="book"):
                pass
            with obs.trace("shred.document", table="book"):
                pass
        snap = registry.snapshot()
        assert snap.counter(
            obs.STAGE_CALLS, stage="shred.document", table="book"
        ) == 2
        hist = snap.histogram(
            obs.STAGE_SECONDS, stage="shred.document", table="book"
        )
        assert hist is not None and hist.count == 2

    def test_span_records_even_when_the_body_raises(self):
        with obs.collect() as registry:
            with pytest.raises(ValueError):
                with obs.trace("load.batch"):
                    raise ValueError("bad batch")
        assert registry.snapshot().counter(
            obs.STAGE_CALLS, stage="load.batch"
        ) == 1
