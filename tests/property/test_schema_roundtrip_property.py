"""Round-trip pinning of the DTD → keys → XML-Schema bridge.

The constraint-interchange path has three legs: :func:`keys_from_dtd`
derives the ``K@`` keys implied by ``ID`` attributes, :func:`keys_to_schema`
renders any key set as ``xs:key`` / ``xs:unique`` identity constraints, and
:func:`schema_to_keys` parses such a rendering back.  Producers publish in
any of the three notations, so the bridge must be loss-free on the ``K@``
fragment: for every DTD, parsing the schema rendering of its derived keys
must reproduce those keys exactly (contexts, targets, attribute sets *and*
names), and the same must hold for arbitrary keys — absolute and relative,
with and without attribute fields — not just DTD-derived ones.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.keys.key import XMLKey
from repro.keys.xmlschema import keys_to_schema, schema_to_keys
from repro.xmlmodel.dtd import keys_from_dtd, parse_dtd

pytestmark = pytest.mark.slow

roundtrip_settings = settings(
    max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

ELEMENTS = ["r", "book", "chapter", "section", "a", "b"]
ATTRIBUTES = ["id", "isbn", "number", "x"]


# ----------------------------------------------------------------------
# Random DTD texts: a handful of element declarations with mixed content
# models, and attribute lists mixing ID, IDREF and CDATA declarations so
# that only a (possibly empty) subset of attributes yields keys.
# ----------------------------------------------------------------------
@st.composite
def dtd_texts(draw):
    declared = draw(
        st.lists(st.sampled_from(ELEMENTS), min_size=1, max_size=4, unique=True)
    )
    lines = []
    for label in declared:
        model = draw(
            st.sampled_from(
                [
                    "EMPTY",
                    "ANY",
                    "(#PCDATA)",
                    "(" + "|".join(declared) + ")*",
                    f"({declared[0]}*)",
                ]
            )
        )
        lines.append(f"<!ELEMENT {label} {model}>")
    for label in declared:
        for name in ATTRIBUTES:
            if draw(st.booleans()):
                attr_type = draw(st.sampled_from(["CDATA", "ID", "IDREF", "NMTOKEN"]))
                default = draw(st.sampled_from(["#REQUIRED", "#IMPLIED"]))
                lines.append(f"<!ATTLIST {label} {name} {attr_type} {default}>")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Arbitrary K@ keys over a small path vocabulary (the bridge must handle
# more than the ``(., (//l, {@a}))`` shape a DTD produces).
# ----------------------------------------------------------------------
@st.composite
def key_path_texts(draw):
    parts = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        parts.append(
            draw(st.sampled_from(["//", ""])) + draw(st.sampled_from(ELEMENTS))
        )
    return "/".join(parts).replace("///", "//")


@st.composite
def arbitrary_keys(draw):
    keys = []
    for index in range(draw(st.integers(min_value=1, max_value=4))):
        context = draw(st.one_of(st.just("."), key_path_texts()))
        target = draw(key_path_texts())
        attributes = draw(
            st.lists(st.sampled_from(ATTRIBUTES), max_size=2, unique=True)
        )
        keys.append(XMLKey(context, target, attributes, name=f"k{index}"))
    return keys


class TestSchemaRoundTrip:
    @roundtrip_settings
    @given(text=dtd_texts())
    def test_dtd_keys_survive_schema_rendering(self, text):
        dtd = parse_dtd(text)
        keys = keys_from_dtd(dtd)
        back = schema_to_keys(keys_to_schema(keys))
        assert back == keys
        assert [key.name for key in back] == [key.name for key in keys]
        # The derived keys are exactly the ID attributes, in declaration
        # order, and every one is absolute (document-wide uniqueness).
        assert len(keys) == sum(
            1 for decl in dtd.attributes.values() if decl.is_id
        )
        assert all(key.is_absolute for key in keys)

    @roundtrip_settings
    @given(text=dtd_texts())
    def test_dtd_derivation_is_deterministic(self, text):
        assert keys_from_dtd(parse_dtd(text)) == keys_from_dtd(parse_dtd(text))

    @roundtrip_settings
    @given(keys=arbitrary_keys())
    def test_arbitrary_keys_round_trip(self, keys):
        back = schema_to_keys(keys_to_schema(keys))
        assert back == keys
        assert [key.name for key in back] == [key.name for key in keys]
        # Spot-check the notational split: attribute-less keys render as
        # xs:unique, keyed ones as xs:key, and relative contexts survive
        # the ``context :: target`` selector scoping.
        for original, parsed in zip(keys, back):
            assert original.context == parsed.context
            assert original.target == parsed.target
            assert original.attributes == parsed.attributes

    @roundtrip_settings
    @given(keys=arbitrary_keys())
    def test_rendering_is_idempotent(self, keys):
        once = keys_to_schema(keys)
        twice = keys_to_schema(schema_to_keys(once))
        assert once == twice
