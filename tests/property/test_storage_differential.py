"""Differential pinning of in-database checking against the in-memory checkers.

Two independent implementations of the paper's FD-with-nulls semantics
exist after PR 5: the in-memory single-pass checkers
(:meth:`RelationInstance.fd_violations` / :meth:`key_violations`) and the
generated-SQL checkers of :mod:`repro.storage.verify` executing inside
SQLite.  These properties force them to agree **witness for witness** —
same kinds, same tuple indexes, same detail strings, same order — over
random instances with nulls, duplicate rows, hostile attribute names and
random FDs, and over multi-document corpus loads with provenance columns.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.relational.instance import NULL, RelationInstance
from repro.relational.schema import RelationSchema
from repro.storage import (
    BulkLoader,
    SQLVerifier,
    SQLiteBackend,
    compile_ddl,
)

pytestmark = pytest.mark.slow

differential_settings = settings(
    max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# A small value vocabulary makes determinant collisions (and hence value
# conflicts) common; hostile attribute names keep the quoting honest.
ATTRIBUTE_POOLS = [
    ["a", "b", "c", "d"],
    ['k"ey', "sp ace", "select", "__ix"],
]
VALUES = ["0", "1", "2", "x'y", 'z"w']


@st.composite
def instances(draw):
    attributes = draw(st.sampled_from(ATTRIBUTE_POOLS))
    arity = draw(st.integers(min_value=2, max_value=len(attributes)))
    attributes = attributes[:arity]
    schema = RelationSchema("r", attributes)
    rows = draw(
        st.lists(
            st.fixed_dictionaries(
                {
                    name: st.one_of(st.just(NULL), st.sampled_from(VALUES))
                    for name in attributes
                }
            ),
            min_size=0,
            max_size=12,
        )
    )
    return RelationInstance(schema, rows)


@st.composite
def instances_with_fd(draw):
    instance = draw(instances())
    attributes = list(instance.schema.attributes)
    lhs = draw(st.sets(st.sampled_from(attributes), min_size=0, max_size=len(attributes)))
    rhs = draw(st.sets(st.sampled_from(attributes), min_size=1, max_size=len(attributes)))
    return instance, frozenset(lhs), frozenset(rhs)


def _loaded(instance):
    ddl = compile_ddl(instance.schema, mode="log")
    backend = SQLiteBackend()
    loader = BulkLoader(backend, ddl)
    loader.create_schema()
    loader.load_rows(instance.schema.name, instance.rows)
    return SQLVerifier(backend, ddl), backend


class TestFDViolationsDifferential:
    @differential_settings
    @given(case=instances_with_fd())
    def test_sql_witnesses_equal_in_memory(self, case):
        instance, lhs, rhs = case
        verifier, backend = _loaded(instance)
        try:
            assert verifier.fd_violations("r", lhs, rhs) == (
                instance.fd_violations(lhs, rhs)
            )
        finally:
            backend.close()

    @differential_settings
    @given(case=instances_with_fd())
    def test_satisfies_fd_agrees(self, case):
        instance, lhs, rhs = case
        verifier, backend = _loaded(instance)
        try:
            assert verifier.satisfies_fd("r", lhs, rhs) == (
                instance.satisfies_fd(lhs, rhs)
            )
        finally:
            backend.close()


class TestKeyViolationsDifferential:
    @differential_settings
    @given(data=st.data())
    def test_key_witnesses_equal_in_memory(self, data):
        instance = data.draw(instances())
        attributes = list(instance.schema.attributes)
        key = data.draw(
            st.sets(st.sampled_from(attributes), min_size=1, max_size=len(attributes))
        )
        keyed_schema = RelationSchema("r", attributes, keys=[key])
        keyed = RelationInstance(keyed_schema, [row.as_dict() for row in instance.rows])
        verifier, backend = _loaded(instance)
        try:
            sql_verifier = SQLVerifier(backend, keyed_schema)
            assert sql_verifier.key_violations("r") == keyed.key_violations()
        finally:
            backend.close()


class TestCorpusDifferential:
    @differential_settings
    @given(data=st.data())
    def test_multi_document_load_with_provenance(self, data):
        """Splitting the rows over several provenance-stamped documents must
        not change any witness: the merged table equals the concatenated
        instance."""
        instance, lhs, rhs = data.draw(instances_with_fd())
        cuts = data.draw(st.integers(min_value=1, max_value=3))
        ddl = compile_ddl(instance.schema, mode="log", provenance_column="_doc")
        backend = SQLiteBackend()
        try:
            loader = BulkLoader(backend, ddl)
            loader.create_schema()
            rows = instance.rows
            size = max(1, (len(rows) + cuts - 1) // cuts) if rows else 1
            for index in range(0, max(len(rows), 1), size):
                loader.load_rows(
                    "r", rows[index : index + size], document=f"doc{index}"
                )
            verifier = SQLVerifier(backend, ddl)
            assert verifier.fd_violations("r", lhs, rhs) == (
                instance.fd_violations(lhs, rhs)
            )
        finally:
            backend.close()
