"""``minimumCover`` must agree with the exhaustive ``naive`` baseline.

On randomly generated (small) workloads, the polynomial algorithm and the
exponential enumerate-and-test algorithm must produce Armstrong-equivalent
covers — this is the property the paper's Section 5 argues analytically.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.minimum_cover import minimum_cover_from_keys
from repro.core.naive import naive_minimum_cover
from repro.core.propagation import check_propagation
from repro.experiments.generators import generate_workload
from repro.relational.fd import equivalent, implies_fd
import pytest

# Hypothesis suites run in their own CI job (see .github/workflows/ci.yml).
pytestmark = pytest.mark.slow


common_settings = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestCoverAgreesWithNaive:
    @common_settings
    @given(
        num_fields=st.integers(min_value=4, max_value=7),
        depth=st.integers(min_value=1, max_value=3),
        num_keys=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_equivalent_covers_on_random_workloads(self, num_fields, depth, num_keys, seed):
        depth = min(depth, num_fields)
        workload = generate_workload(num_fields, depth=depth, num_keys=num_keys, seed=seed)
        fast = minimum_cover_from_keys(workload.keys, workload.rule)
        slow = naive_minimum_cover(workload.keys, workload.rule, max_fields=num_fields)
        assert equivalent(fast.cover, slow.cover)

    @common_settings
    @given(
        num_fields=st.integers(min_value=4, max_value=7),
        depth=st.integers(min_value=1, max_value=3),
        num_keys=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_every_cover_fd_is_accepted_by_propagation(self, num_fields, depth, num_keys, seed):
        depth = min(depth, num_fields)
        workload = generate_workload(num_fields, depth=depth, num_keys=num_keys, seed=seed)
        result = minimum_cover_from_keys(workload.keys, workload.rule)
        for fd in result.cover:
            assert check_propagation(
                workload.keys, workload.rule, fd, check_existence=False
            ).holds, str(fd)

    @common_settings
    @given(
        num_fields=st.integers(min_value=4, max_value=6),
        num_keys=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_cover_is_nonredundant(self, num_fields, num_keys, seed):
        workload = generate_workload(num_fields, depth=2, num_keys=num_keys, seed=seed)
        cover = minimum_cover_from_keys(workload.keys, workload.rule).cover
        for index, fd in enumerate(cover):
            others = cover[:index] + cover[index + 1 :]
            assert not implies_fd(others, fd)
