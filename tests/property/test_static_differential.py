"""Differential pinning of the static optimization plane (PR 9).

The schema-guided plane — :func:`repro.xmlmodel.static.compile_plan` and
the :class:`~repro.xmlmodel.static.SkipSet` it produces — is a pure
*optimization*: consulting a plan may only change how fast an answer is
computed, never the answer.  These properties hold the plane to that
contract on random documents, random keys, random rules **and random
DTDs**, with no conformance assumption whatsoever: the documents here
routinely violate the DTD the plan was compiled from (wrong roots,
undeclared elements, stray attributes), and the pruned run must *still*
be answer-identical, because every skip is re-verified against the
actual tags on the wire and aborted on mismatch.

* **Key checking** — :func:`stream_violations` with a plan equals the
  unpruned run violation-for-violation: kinds, witnesses, context ids,
  node ids *and rendered detail strings*, on both tokenizer backends;

* **Shredding** — :func:`stream_evaluate_rule` with a plan yields the
  exact row list (same rows, same order) under bag and set semantics;

* **Parallel** — :func:`run_sharded` with a plan matches its own
  unpruned run on merged violations and merged instances;

* **Incremental** — an :class:`IncrementalEngine` built with a plan
  stays indistinguishable from a plan-less twin across subtree deltas;

* **Validate-while-shredding** — :func:`stream_dtd_violations` equals
  the DOM :meth:`DTD.validate` witness-for-witness (kind, node id and
  detail) on arbitrary — mostly invalid — documents.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.incremental import IncrementalEngine, insert, replace
from repro.keys.stream import stream_violations
from repro.parallel import run_sharded
from repro.transform.stream import stream_evaluate_rule
from repro.xmlmodel.dtd import parse_dtd, stream_dtd_violations
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serializer import serialize
from repro.xmlmodel.static import compile_plan

from test_parallel_differential import (
    ATTRIBUTES,
    LABELS,
    differential_settings,
    fingerprint,
    table_rules,
    xml_documents,
    xml_keys,
)

pytestmark = pytest.mark.slow


# ----------------------------------------------------------------------
# Random DTDs over the documents' vocabulary.  Content models range from
# permissive (ANY, full choice) to narrow (one child label, EMPTY), so
# the compiled skip sets range from empty to aggressive; attribute
# declarations are drawn independently of what documents actually carry.
# ----------------------------------------------------------------------
@st.composite
def random_dtds(draw):
    declared = draw(
        st.lists(st.sampled_from(LABELS), min_size=1, max_size=len(LABELS), unique=True)
    )
    lines = []
    for label in declared:
        model = draw(
            st.sampled_from(
                [
                    "EMPTY",
                    "ANY",
                    "(#PCDATA)",
                    "(" + "|".join(declared) + ")*",
                    f"({declared[0]}*)",
                    f"(#PCDATA|{declared[-1]})*",
                ]
            )
        )
        lines.append(f"<!ELEMENT {label} {model}>")
    for label in declared:
        for name in ATTRIBUTES:
            if draw(st.booleans()):
                attr_type = draw(st.sampled_from(["CDATA", "ID", "IDREF"]))
                default = draw(st.sampled_from(["#REQUIRED", "#IMPLIED"]))
                lines.append(f"<!ATTLIST {label} {name} {attr_type} {default}>")
    return parse_dtd("\n".join(lines))


def witness(found):
    """Everything a DTD violation reports."""
    return [(v.kind, v.node_id, v.detail) for v in found]


# ----------------------------------------------------------------------
# 1. Key checking: pruned ≡ unpruned, per backend, on any document
# ----------------------------------------------------------------------
class TestPrunedCheckerDifferential:
    @differential_settings
    @given(
        tree=xml_documents(),
        keys=st.lists(xml_keys(), min_size=1, max_size=3),
        dtd=random_dtds(),
        engine=st.sampled_from([None, "pure"]),
    )
    def test_violations_identical(self, tree, keys, dtd, engine):
        compact = serialize(tree, indent=0)
        plan = compile_plan(dtd, keys=keys)
        unpruned = stream_violations(compact, keys, engine=engine)
        pruned = stream_violations(compact, keys, engine=engine, plan=plan)
        assert fingerprint(pruned) == fingerprint(unpruned)

    @differential_settings
    @given(tree=xml_documents(), keys=st.lists(xml_keys(), min_size=1, max_size=3), dtd=random_dtds())
    def test_backends_agree_under_pruning(self, tree, keys, dtd):
        compact = serialize(tree, indent=0)
        plan = compile_plan(dtd, keys=keys)
        default_run = stream_violations(compact, keys, plan=plan)
        pure_run = stream_violations(compact, keys, engine="pure", plan=plan)
        assert fingerprint(default_run) == fingerprint(pure_run)


# ----------------------------------------------------------------------
# 2. Shredding: pruned rows ≡ unpruned rows, exact order
# ----------------------------------------------------------------------
class TestPrunedShredDifferential:
    @differential_settings
    @given(rule=table_rules(), tree=xml_documents(), dtd=random_dtds(), dedup=st.booleans())
    def test_rows_identical(self, rule, tree, dtd, dedup):
        compact = serialize(tree, indent=0)
        plan = compile_plan(dtd, rules=[rule])
        unpruned = stream_evaluate_rule(rule, compact, deduplicate=dedup)
        pruned = stream_evaluate_rule(rule, compact, deduplicate=dedup, plan=plan)
        assert pruned.rows == unpruned.rows


# ----------------------------------------------------------------------
# 3. Parallel: a plan handed to run_sharded changes nothing but speed
# ----------------------------------------------------------------------
class TestPrunedShardedDifferential:
    @differential_settings
    @given(
        rule=table_rules(),
        tree=xml_documents(),
        keys=st.lists(xml_keys(), min_size=1, max_size=2),
        dtd=random_dtds(),
        jobs=st.integers(min_value=2, max_value=4),
    )
    def test_sharded_run_identical(self, rule, tree, keys, dtd, jobs):
        compact = serialize(tree, indent=0)
        plan = compile_plan(dtd, keys=keys, rules=[rule])
        unpruned = run_sharded(
            compact, transformation=[rule], keys=keys, jobs=jobs, use_processes=False
        )
        pruned = run_sharded(
            compact,
            transformation=[rule],
            keys=keys,
            jobs=jobs,
            use_processes=False,
            plan=plan,
        )
        assert fingerprint(pruned.violations) == fingerprint(unpruned.violations)
        assert pruned.instances["R"].rows == unpruned.instances["R"].rows
        if not plan.skipset:
            assert pruned.skipped_subtrees == 0


# ----------------------------------------------------------------------
# 4. Incremental: a planned engine tracks a plan-less twin across deltas
# ----------------------------------------------------------------------
@st.composite
def fragments(draw):
    from repro.xmlmodel.builder import element, text

    node = element(draw(st.sampled_from(LABELS)))
    for name in ATTRIBUTES:
        if draw(st.booleans()):
            node.set_attribute(name, draw(st.sampled_from(["0", "1"])))
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        child = element(draw(st.sampled_from(LABELS)))
        if draw(st.booleans()):
            child.append_child(text("t"))
        node.append_child(child)
    return serialize(node, indent=0)


class TestPrunedIncrementalDifferential:
    @differential_settings
    @given(
        tree=xml_documents(),
        keys=st.lists(xml_keys(), min_size=1, max_size=2),
        dtd=random_dtds(),
        edits=st.lists(fragments(), min_size=1, max_size=3),
        data=st.data(),
    )
    def test_engine_with_plan_identical(self, tree, keys, dtd, edits, data):
        compact = serialize(tree, indent=0)
        plan = compile_plan(dtd, keys=keys)
        baseline = IncrementalEngine(keys=keys)
        planned = IncrementalEngine(keys=keys, plan=plan)
        try:
            count = baseline.load(compact)
        except ValueError:
            return  # childless roots stay on the batch planes
        planned.load(compact)
        assert fingerprint(planned.violations()) == fingerprint(baseline.violations())
        for fragment in edits:
            position = data.draw(st.integers(min_value=0, max_value=count))
            if position < count and data.draw(st.booleans()):
                delta = replace(position, fragment)
            else:
                delta = insert(min(position, count), fragment)
            baseline.apply(delta)
            planned.apply(delta)
            count = baseline.subtree_count
            assert planned.text() == baseline.text()
            assert fingerprint(planned.violations()) == fingerprint(
                baseline.violations()
            )


# ----------------------------------------------------------------------
# 5. Validate-while-shredding ≡ DOM validation, witness-for-witness
# ----------------------------------------------------------------------
class TestStreamingValidatorDifferential:
    @differential_settings
    @given(tree=xml_documents(), dtd=random_dtds(), engine=st.sampled_from([None, "pure"]))
    def test_streaming_matches_dom(self, tree, dtd, engine):
        compact = serialize(tree, indent=0)
        streamed = stream_dtd_violations(compact, dtd, engine=engine)
        dom = dtd.validate(parse_document(compact))
        assert witness(streamed) == witness(dom)

    @differential_settings
    @given(tree=xml_documents(), dtd=random_dtds())
    def test_validity_verdicts_agree(self, tree, dtd):
        compact = serialize(tree, indent=0)
        streamed = stream_dtd_violations(compact, dtd)
        assert bool(streamed) == (not dtd.is_valid(parse_document(compact)))
