"""Differential pinning of the accelerated tokenizer against the pure oracle.

PR 7 adds a second implementation of the tokenizer contract
(:mod:`repro.xmlmodel.accel`, expat behind the capability probe).  The
pure tokenizer is the reference; these properties force the accelerated
plane to be observationally identical on random documents:

* **Events** — same kinds, names and payloads in the same order, in both
  whitespace modes, for text, bytes, chunked and file(``mmap``) sources.
* **Errors** — truncating a document at a random offset must produce the
  same exception type, message and position from both engines (or the
  same event stream, when the cut happens to leave a well-formed prefix).
* **Consumers** — node-id-bearing results (key violations with context
  and witness ids, shredded rows) must not depend on the engine, and
  :func:`repro.parallel.run_sharded` over an ``mmap``-sliced file must be
  byte-identical to the serial pure run.
"""

import os
import pathlib
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_shred_differential import canonical, table_rules, xml_documents, xml_keys

from repro.keys.stream import stream_violations
from repro.parallel import run_sharded
from repro.transform.stream import stream_evaluate_rule
from repro.xmlmodel.events import iter_events
from repro.xmlmodel.parser import XMLSyntaxError
from repro.xmlmodel.serializer import serialize

pytestmark = pytest.mark.slow

differential_settings = settings(
    max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def outcome(source, strip=True, engine=None):
    try:
        return ("events", list(
            iter_events(source, strip_whitespace=strip, engine=engine)
        ))
    except XMLSyntaxError as error:
        return ("error", type(error).__name__, str(error), error.position)


class TestEventStreamDifferential:
    @differential_settings
    @given(tree=xml_documents(), strip=st.booleans())
    def test_text_events_agree(self, tree, strip):
        text = serialize(tree, indent=0)
        assert outcome(text, strip, "expat") == outcome(text, strip, "pure")

    @differential_settings
    @given(tree=xml_documents(), strip=st.booleans())
    def test_indented_text_events_agree(self, tree, strip):
        # Indentation exercises the whitespace-only text drop rule.
        text = serialize(tree, indent=2)
        assert outcome(text, strip, "expat") == outcome(text, strip, "pure")

    @differential_settings
    @given(tree=xml_documents())
    def test_byte_and_chunked_sources_agree(self, tree):
        text = serialize(tree, indent=0)
        expected = outcome(text, engine="pure")
        assert outcome(text.encode("utf-8"), engine="expat") == expected
        chunks = [text[i : i + 3] for i in range(0, len(text), 3)]
        assert outcome(iter(chunks), engine="expat") == expected

    @differential_settings
    @given(tree=xml_documents())
    def test_file_source_agrees(self, tree):
        text = serialize(tree, indent=0)
        descriptor, path = tempfile.mkstemp(suffix=".xml")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(text)
            assert outcome(pathlib.Path(path), engine="expat") == outcome(
                text, engine="pure"
            )
        finally:
            os.unlink(path)


class TestErrorDifferential:
    @differential_settings
    @given(tree=xml_documents(), data=st.data())
    def test_truncated_documents_fail_identically(self, tree, data):
        text = serialize(tree, indent=0)
        cut = data.draw(st.integers(min_value=0, max_value=max(len(text) - 1, 0)))
        truncated = text[:cut]
        assert outcome(truncated, True, "expat") == outcome(truncated, True, "pure")

    @differential_settings
    @given(tree=xml_documents(), data=st.data())
    def test_corrupted_documents_fail_identically(self, tree, data):
        text = serialize(tree, indent=0)
        position = data.draw(st.integers(min_value=0, max_value=len(text) - 1))
        glitch = data.draw(st.sampled_from(["<", ">", "&", "=", "'"]))
        corrupted = text[:position] + glitch + text[position + 1 :]
        assert outcome(corrupted, True, "expat") == outcome(corrupted, True, "pure")


class TestConsumerDifferential:
    @differential_settings
    @given(tree=xml_documents(), keys=st.lists(xml_keys(), min_size=1, max_size=3))
    def test_violation_node_ids_agree(self, tree, keys):
        text = serialize(tree, indent=0)
        pure = stream_violations(text, keys, engine="pure")
        accel = stream_violations(text, keys, engine="expat")
        assert canonical(accel) == canonical(pure)

    @differential_settings
    @given(rule=table_rules(), tree=xml_documents())
    def test_shredded_rows_agree(self, rule, tree):
        text = serialize(tree, indent=0)
        pure = stream_evaluate_rule(rule, text, deduplicate=False, engine="pure")
        accel = stream_evaluate_rule(rule, text, deduplicate=False, engine="expat")
        assert accel.rows == pure.rows


def fingerprint(run):
    rows = (
        {name: instance.rows for name, instance in run.instances.items()}
        if run.instances is not None
        else None
    )
    violations = (
        [
            (v.key.text, v.context_node_id, v.kind, v.node_ids, v.detail)
            for v in run.violations
        ]
        if run.violations is not None
        else None
    )
    return rows, violations


class TestShardedMmapDifferential:
    @differential_settings
    @given(rule=table_rules(), tree=xml_documents(), keys=st.lists(xml_keys(), max_size=2))
    def test_mmap_sliced_run_matches_serial_pure(self, rule, tree, keys):
        text = serialize(tree, indent=0)
        assert text.isascii(), "the strategy vocabulary is ASCII"
        serial = run_sharded(
            text, transformation=[rule], keys=keys, jobs=1, engine="pure"
        )
        descriptor, path = tempfile.mkstemp(suffix=".xml")
        try:
            with os.fdopen(descriptor, "w", encoding="ascii") as handle:
                handle.write(text)
            sharded = run_sharded(
                pathlib.Path(path),
                transformation=[rule],
                keys=keys,
                jobs=2,
                use_processes=False,
                engine="expat",
            )
        finally:
            os.unlink(path)
        assert fingerprint(sharded) == fingerprint(serial)
