"""Differential pinning of the telemetry plane's snapshot algebra.

Two promises from the observability issue, checked on random inputs:

* **Sharded ≡ serial totals** — running the parallel pipeline under
  ``obs.collect`` must produce exactly the same deterministic counters
  (``pipeline.events``, per-relation ``shred.rows``,
  ``check.violations``) as one serial pass over the same document.  The
  shard workers collect into private registries whose snapshots ship
  back through ``run_sharded`` and merge at the coordinator — if the
  merge, the prologue accounting or the root-END bookkeeping dropped or
  double-counted anything, these properties would catch it.

* **Per-delta subtraction** — every :meth:`IncrementalEngine.apply`
  under telemetry captures its own :class:`MetricsSnapshot`; the
  cumulative registry is exactly the merge of the per-delta snapshots,
  and any snapshot subtracts back out (``merge(a, b).subtract(b) ==
  a``), so "cumulative minus this delta" is always well-defined.

The document/rule/key strategies are shared with the parallel
differential suite (same module directory, imported by module name as
pytest adds the basedir to ``sys.path``).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_parallel_differential import (
    shard_counts,
    table_rules,
    xml_documents,
    xml_keys,
)

from repro import obs
from repro.incremental import IncrementalEngine, delete, insert, replace
from repro.keys.key import parse_key
from repro.obs.metrics import MetricsSnapshot
from repro.parallel import run_sharded
from repro.transform import parse_transformation
from repro.xmlmodel.builder import document, element
from repro.xmlmodel.serializer import serialize

pytestmark = pytest.mark.slow

differential_settings = settings(
    max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _counters(snapshot, *names):
    """The named counter series only (labels included), for comparison
    across runs that legitimately differ in memoisation gauges."""
    return {
        key: value
        for key, value in snapshot.counters.items()
        if key[0] in names
    }


# ----------------------------------------------------------------------
# 1. Sharded metrics merge to exactly the serial totals
# ----------------------------------------------------------------------
class TestShardedMetricsDifferential:
    @differential_settings
    @given(
        rule=table_rules(),
        key=xml_keys(),
        tree=xml_documents(),
        num_shards=shard_counts,
    )
    def test_deterministic_counters_agree(self, rule, key, tree, num_shards):
        compact = serialize(tree, indent=0)
        with obs.collect() as serial_registry:
            serial = run_sharded(
                compact, transformation=[rule], keys=[key], jobs=1
            )
        with obs.collect() as sharded_registry:
            sharded = run_sharded(
                compact,
                transformation=[rule],
                keys=[key],
                jobs=num_shards,
                use_processes=False,
            )
        # The runs themselves agree (pinned in depth elsewhere) ...
        assert sharded.instances["R"].rows == serial.instances["R"].rows
        assert len(sharded.violations) == len(serial.violations)
        # ... and so do the deterministic counters, series for series.
        names = ("pipeline.events", "shred.rows", "check.violations")
        assert _counters(sharded_registry.snapshot(), *names) == _counters(
            serial_registry.snapshot(), *names
        )

    @differential_settings
    @given(tree=xml_documents(), num_shards=shard_counts)
    def test_worker_snapshots_merge_like_one_pass(self, tree, num_shards):
        # Keys only (no transformation): the event totals still line up.
        compact = serialize(tree, indent=0)
        key = parse_key("(., (//a, {x}))")
        with obs.collect() as serial_registry:
            run_sharded(compact, keys=[key], jobs=1)
        with obs.collect() as sharded_registry:
            run_sharded(compact, keys=[key], jobs=num_shards, use_processes=False)
        assert sharded_registry.snapshot().counter(
            "pipeline.events"
        ) == serial_registry.snapshot().counter("pipeline.events")


# ----------------------------------------------------------------------
# 2. Incremental per-delta snapshots subtract cleanly
# ----------------------------------------------------------------------
ENGINE_RULES = """
table R
  var xa <- xr : //a
  var x1 <- xa : @x
  field f0 = value(x1)
"""

ENGINE_KEYS = "(., (//b, {y}))"


@st.composite
def fragments(draw):
    """Small serialized subtrees over the shared a/b/c vocabulary."""

    def build(depth):
        node = element(draw(st.sampled_from(["a", "b", "c"])))
        for name in ("x", "y"):
            if draw(st.booleans()):
                node.set_attribute(name, draw(st.sampled_from(["0", "1"])))
        if depth < 2:
            for _ in range(draw(st.integers(min_value=0, max_value=2))):
                node.append_child(build(depth + 1))
        return node

    return serialize(document(build(0)), indent=0)


class TestIncrementalMetricsDifferential:
    def _engine(self, parts):
        engine = IncrementalEngine(
            parse_transformation(ENGINE_RULES),
            [parse_key(ENGINE_KEYS)],
        )
        engine.load("<r>" + "".join(parts) + "</r>")
        return engine

    @differential_settings
    @given(
        parts=st.lists(fragments(), min_size=1, max_size=3),
        data=st.data(),
    )
    def test_per_delta_snapshots_merge_and_subtract(self, parts, data):
        with obs.collect() as registry:
            engine = self._engine(parts)
            after_load = registry.snapshot()
            count = len(parts)
            snapshots = []
            for _ in range(data.draw(st.integers(min_value=1, max_value=4))):
                kinds = ["insert"] + (["delete", "replace"] if count else [])
                kind = data.draw(st.sampled_from(kinds))
                if kind == "insert":
                    position = data.draw(
                        st.integers(min_value=0, max_value=count)
                    )
                    deltas = insert(position, data.draw(fragments()))
                    count += 1
                elif kind == "delete":
                    position = data.draw(
                        st.integers(min_value=0, max_value=count - 1)
                    )
                    deltas = delete(position)
                    count -= 1
                else:
                    position = data.draw(
                        st.integers(min_value=0, max_value=count - 1)
                    )
                    deltas = replace(position, data.draw(fragments()))
                before = registry.snapshot()
                report = engine.apply(deltas)
                after = registry.snapshot()
                assert report.metrics is not None
                snapshots.append(report.metrics)
                # The ambient registry advanced by exactly this delta.
                assert after == before.merge(report.metrics)
                assert after.subtract(report.metrics) == before
        # Cumulative = load + the merge of every per-delta snapshot,
        # in any association order (the monoid is associative).
        cumulative = after_load
        for snapshot in snapshots:
            cumulative = cumulative.merge(snapshot)
        assert cumulative == registry.snapshot()
        # And each one subtracts back out of the total cleanly.
        remaining = registry.snapshot()
        for snapshot in reversed(snapshots):
            remaining = remaining.subtract(snapshot)
        assert remaining == after_load

    @differential_settings
    @given(a=st.lists(fragments(), min_size=1, max_size=2), data=st.data())
    def test_merge_subtract_inverse_on_real_delta_snapshots(self, a, data):
        # merge(a, b).subtract(b) == a for snapshots produced by real
        # deltas (not synthetic registries), including histogram series
        # from the delta.apply trace span.
        with obs.collect() as registry:
            engine = self._engine(a)
            first = engine.apply(insert(0, data.draw(fragments()))).metrics
            second = engine.apply(insert(0, data.draw(fragments()))).metrics
        assert first.merge(second).subtract(second) == first
        assert second.merge(first).subtract(first) == second
        assert first.merge(second) == second.merge(first)
        hist = first.histogram("stage.seconds", stage="delta.apply", kind="insert")
        assert hist is not None and hist.count == 1

    def test_apply_without_telemetry_skips_capture(self):
        obs.disable()
        engine = self._engine(["<a x='1'/>"])
        report = engine.apply(insert(0, "<b y='0'/>"))
        assert report.metrics is None
