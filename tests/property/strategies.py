"""Hypothesis strategies shared by the property-based tests (not a conftest)."""

from hypothesis import strategies as st

from repro.xmlmodel.builder import document, element, text
from repro.xmlmodel.paths import PathExpression, PathStep


# ----------------------------------------------------------------------
# Path expressions over a small label vocabulary
# ----------------------------------------------------------------------
LABELS = ["a", "b", "c", "book", "chapter"]
ATTRIBUTES = ["@x", "@y", "@isbn"]


def path_steps():
    label_step = st.sampled_from(LABELS).map(PathStep.label)
    attribute_step = st.sampled_from(ATTRIBUTES).map(PathStep.label)
    descendant_step = st.just(PathStep.descendant())
    return st.one_of(label_step, descendant_step, attribute_step)


def path_expressions(max_size: int = 5):
    return st.lists(path_steps(), min_size=0, max_size=max_size).map(PathExpression)


def element_only_path_expressions(max_size: int = 5):
    label_step = st.sampled_from(LABELS).map(PathStep.label)
    descendant_step = st.just(PathStep.descendant())
    return st.lists(
        st.one_of(label_step, descendant_step), min_size=0, max_size=max_size
    ).map(PathExpression)


# ----------------------------------------------------------------------
# Random documents over the book/chapter/section vocabulary that satisfy the
# paper's keys K1..K7 *by construction*.
# ----------------------------------------------------------------------
@st.composite
def paper_conformant_documents(draw):
    isbn_counter = 0
    books = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        isbn_counter += 1
        children = []
        if draw(st.booleans()):
            children.append(element("title", text(draw(st.sampled_from(["XML", "SQL", "DB"])))))
        contact_used = False
        for author_index in range(draw(st.integers(min_value=0, max_value=2))):
            author_children = [element("name", text(f"author-{author_index}"))]
            if not contact_used and draw(st.booleans()):
                author_children.append(element("contact", text(f"c-{isbn_counter}")))
                contact_used = True
            children.append(element("author", *author_children))
        for chapter_number in range(draw(st.integers(min_value=0, max_value=3))):
            chapter_children = []
            if draw(st.booleans()):
                chapter_children.append(element("name", text(f"ch-{chapter_number}")))
            for section_number in range(draw(st.integers(min_value=0, max_value=2))):
                section_children = []
                if draw(st.booleans()):
                    section_children.append(element("name", text(f"s-{section_number}")))
                chapter_children.append(
                    element("section", {"number": str(section_number)}, *section_children)
                )
            children.append(
                element("chapter", {"number": str(chapter_number)}, *chapter_children)
            )
        books.append(element("book", {"isbn": str(isbn_counter)}, *children))
    return document(element("r", *books))


# ----------------------------------------------------------------------
# Random sets of relational FDs over a small attribute vocabulary
# ----------------------------------------------------------------------
FD_ATTRIBUTES = ["a", "b", "c", "d", "e"]


def attribute_sets(min_size=0, max_size=3):
    return st.sets(st.sampled_from(FD_ATTRIBUTES), min_size=min_size, max_size=max_size)


@st.composite
def fd_sets(draw, max_fds: int = 6):
    from repro.relational.fd import FunctionalDependency

    count = draw(st.integers(min_value=0, max_value=max_fds))
    fds = []
    for _ in range(count):
        lhs = draw(attribute_sets(0, 3))
        rhs = draw(attribute_sets(1, 2))
        fds.append(FunctionalDependency(lhs, rhs))
    return fds
