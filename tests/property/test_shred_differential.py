"""Differential pinning of the streaming data plane against the DOM plane.

Two independent implementations of the Section 2 semantics exist after
PR 3: the DOM evaluator/checker (reference) and the streaming
evaluator/checker (fast path).  These properties force them to agree:

* **Shredding** — for random table rules and random documents, the
  streaming evaluator must produce the DOM evaluator's bag of tuples
  *tuple-for-tuple* (and the same set under set semantics), both when fed
  replayed tree events and when fed serialized text through the tokenizer.

* **Key checking** — for random key sets (attribute targets, attribute
  contexts, ``//`` everywhere, empty attribute sets) over documents with
  naturally occurring duplicate values and missing attributes, the
  streaming checker must report the same verdicts and the same violations
  (kind, context node, witness node ids) as ``keys.satisfaction``.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.keys.key import XMLKey
from repro.keys.satisfaction import satisfies, violations
from repro.keys.stream import stream_satisfies, stream_violations
from repro.transform.evaluate import evaluate_rule
from repro.transform.rule import TableRule
from repro.transform.stream import stream_evaluate_rule
from repro.xmlmodel.builder import document, element, text
from repro.xmlmodel.serializer import serialize

pytestmark = pytest.mark.slow

differential_settings = settings(
    max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

LABELS = ["a", "b", "c"]
ATTRIBUTES = ["x", "y"]
VALUES = ["0", "1"]


# ----------------------------------------------------------------------
# Random documents (small label/value vocabulary → natural collisions)
# ----------------------------------------------------------------------
@st.composite
def xml_documents(draw):
    def build(depth):
        node = element(draw(st.sampled_from(LABELS)))
        for name in ATTRIBUTES:
            if draw(st.booleans()):
                node.set_attribute(name, draw(st.sampled_from(VALUES)))
        if depth < 3:
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                if draw(st.integers(min_value=0, max_value=4)) == 0:
                    node.append_child(text(draw(st.sampled_from(["t", "u"]))))
                else:
                    node.append_child(build(depth + 1))
        return node

    return document(build(0))


# ----------------------------------------------------------------------
# Random table rules (anchors may use // and @; inner paths are simple)
# ----------------------------------------------------------------------
@st.composite
def anchor_paths(draw):
    parts = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        prefix = draw(st.sampled_from(["//", ""]))
        parts.append(prefix + draw(st.sampled_from(LABELS)))
    if draw(st.booleans()):
        parts.append("@" + draw(st.sampled_from(ATTRIBUTES)))
    return "/".join(parts)


@st.composite
def simple_paths(draw):
    parts = [
        draw(st.sampled_from(LABELS))
        for _ in range(draw(st.integers(min_value=1, max_value=2)))
    ]
    if draw(st.booleans()):
        parts.append("@" + draw(st.sampled_from(ATTRIBUTES)))
    return "/".join(parts)


@st.composite
def table_rules(draw):
    rule = TableRule("R")
    counter = [0]

    def fresh():
        counter[0] += 1
        return f"v{counter[0]}"

    leaves = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        anchor = fresh()
        rule.add_mapping(anchor, rule.root_variable, draw(anchor_paths()))
        frontier = [anchor]
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            parent = draw(st.sampled_from(frontier))
            child = fresh()
            rule.add_mapping(child, parent, draw(simple_paths()))
            frontier.append(child)
        # Leaves of this anchor subtree: variables without outgoing mappings.
        sources = {m.source for m in rule.mappings}
        leaves.extend(v for v in frontier if v not in sources)
    for index, leaf in enumerate(dict.fromkeys(leaves)):
        rule.add_field(f"f{index}", leaf)
    return rule


# ----------------------------------------------------------------------
# Random keys
# ----------------------------------------------------------------------
@st.composite
def key_paths(draw, allow_attribute=True):
    parts = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        parts.append(draw(st.sampled_from(["//", ""])) + draw(st.sampled_from(LABELS)))
    body = "/".join(parts).replace("///", "//")
    if allow_attribute and draw(st.integers(min_value=0, max_value=3)) == 0:
        body += "/@" + draw(st.sampled_from(ATTRIBUTES))
    return body


@st.composite
def xml_keys(draw):
    context = draw(st.one_of(st.just("."), key_paths()))
    target = draw(key_paths())
    attributes = draw(st.lists(st.sampled_from(ATTRIBUTES), max_size=2, unique=True))
    return XMLKey(context, target, attributes)


def row_bag(instance):
    return Counter(instance.rows)


class TestStreamingEvaluatorDifferential:
    @differential_settings
    @given(rule=table_rules(), tree=xml_documents())
    def test_bag_semantics_agree_on_tree_events(self, rule, tree):
        dom = evaluate_rule(rule, tree, deduplicate=False)
        stream = stream_evaluate_rule(rule, tree, deduplicate=False)
        assert row_bag(dom) == row_bag(stream)

    @differential_settings
    @given(rule=table_rules(), tree=xml_documents())
    def test_set_semantics_agree(self, rule, tree):
        dom = evaluate_rule(rule, tree, deduplicate=True)
        stream = stream_evaluate_rule(rule, tree, deduplicate=True)
        assert set(dom.rows) == set(stream.rows)
        assert len(stream) == len(set(stream.rows))

    @differential_settings
    @given(rule=table_rules(), tree=xml_documents())
    def test_tokenized_text_agrees_with_dom(self, rule, tree):
        # Through the full pipeline: serialize → tokenizer → streaming
        # evaluator, against the DOM evaluator on the reparsed tree.
        from repro.xmlmodel.parser import parse_document

        compact = serialize(tree, indent=0)
        dom = evaluate_rule(rule, parse_document(compact), deduplicate=False)
        stream = stream_evaluate_rule(rule, compact, deduplicate=False)
        assert row_bag(dom) == row_bag(stream)


def canonical(found):
    return sorted(
        (v.key.text, v.context_node_id, v.kind, tuple(sorted(v.node_ids))) for v in found
    )


class TestStreamingCheckerDifferential:
    @differential_settings
    @given(tree=xml_documents(), keys=st.lists(xml_keys(), min_size=1, max_size=4))
    def test_violations_agree_with_dom(self, tree, keys):
        dom = [v for key in keys for v in violations(tree, key)]
        stream = stream_violations(tree, keys)
        assert canonical(stream) == canonical(dom)

    @differential_settings
    @given(tree=xml_documents(), keys=st.lists(xml_keys(), min_size=1, max_size=4))
    def test_verdicts_agree_with_dom(self, tree, keys):
        assert stream_satisfies(tree, keys) == all(satisfies(tree, key) for key in keys)

    @differential_settings
    @given(tree=xml_documents(), keys=st.lists(xml_keys(), min_size=1, max_size=3))
    def test_tokenized_text_agrees_with_dom(self, tree, keys):
        from repro.xmlmodel.parser import parse_document

        compact = serialize(tree, indent=0)
        reparsed = parse_document(compact)
        dom = [v for key in keys for v in violations(reparsed, key)]
        stream = stream_violations(compact, keys)
        assert canonical(stream) == canonical(dom)
