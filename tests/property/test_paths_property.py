"""Property-based tests for the path language.

The containment oracle is the foundation of key implication (and hence of
every propagation result), so its algebraic laws and its agreement with
concrete evaluation are checked on randomly generated expressions and
documents.
"""

from hypothesis import HealthCheck, given, settings

import pytest

# Hypothesis suites run in their own CI job (see .github/workflows/ci.yml).
pytestmark = pytest.mark.slow

from repro.xmlmodel.paths import PathExpression, concat, contains, parse_path

from tests.property.strategies import (
    element_only_path_expressions,
    paper_conformant_documents,
    path_expressions,
)


common_settings = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestContainmentLaws:
    @common_settings
    @given(path_expressions())
    def test_reflexive(self, path):
        assert contains(path, path)

    @common_settings
    @given(path_expressions(), path_expressions(), path_expressions())
    def test_transitive(self, first, second, third):
        if contains(second, first) and contains(third, second):
            assert contains(third, first)

    @common_settings
    @given(path_expressions())
    def test_descendant_covers_every_element_path(self, path):
        descendant = parse_path("//")
        if all(step.kind.value != "attribute" for step in path.steps):
            assert contains(descendant, path)

    @common_settings
    @given(path_expressions(), path_expressions(), path_expressions(max_size=2))
    def test_concatenation_is_monotone(self, covered, covering, suffix):
        if contains(covering, covered):
            assert contains(concat(covering, suffix), concat(covered, suffix))
            assert contains(concat(suffix, covering), concat(suffix, covered))

    @common_settings
    @given(path_expressions())
    def test_epsilon_concatenation_identity(self, path):
        assert concat(path, PathExpression.epsilon()) == path
        assert concat(PathExpression.epsilon(), path) == path

    @common_settings
    @given(path_expressions(), path_expressions())
    def test_mutual_containment_means_same_evaluation(self, first, second):
        # Equivalent expressions must evaluate identically on a fixed tree.
        if contains(first, second) and contains(second, first):
            doc = _FIXED_DOC
            assert {id(n) for n in first.evaluate(doc.root)} == {
                id(n) for n in second.evaluate(doc.root)
            }


class TestContainmentAgreesWithEvaluation:
    """If ``P ⊆ Q`` then on every document ``[[P]] ⊆ [[Q]]``."""

    @common_settings
    @given(
        element_only_path_expressions(max_size=4),
        element_only_path_expressions(max_size=4),
        paper_conformant_documents(),
    )
    def test_containment_sound_wrt_evaluation(self, covered, covering, doc):
        if contains(covering, covered):
            covered_nodes = {id(node) for node in covered.evaluate(doc.root)}
            covering_nodes = {id(node) for node in covering.evaluate(doc.root)}
            assert covered_nodes <= covering_nodes

    @common_settings
    @given(path_expressions(max_size=4), paper_conformant_documents())
    def test_evaluation_results_are_unique_nodes(self, path, doc):
        nodes = path.evaluate(doc.root)
        assert len(nodes) == len({id(node) for node in nodes})


class TestParsingRoundTrip:
    @common_settings
    @given(path_expressions())
    def test_text_round_trips(self, path):
        assert parse_path(path.text) == path


from repro.xmlmodel.builder import document, element, text  # noqa: E402  (fixture data)

_FIXED_DOC = document(
    element(
        "r",
        element(
            "book",
            {"isbn": "1", "x": "1"},
            element("a", element("b", element("c"))),
            element("chapter", {"y": "2"}, element("a")),
        ),
        element("a", element("a", {"x": "3"}, element("b"))),
    )
)
