"""Property-based tests for the relational FD machinery."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.relational.fd import (
    attribute_closure,
    equivalent,
    implies_fd,
    minimize,
    minimum_cover,
)
from repro.relational.normalization import candidate_keys

from tests.property.strategies import FD_ATTRIBUTES, attribute_sets, fd_sets
import pytest

# Hypothesis suites run in their own CI job (see .github/workflows/ci.yml).
pytestmark = pytest.mark.slow


common_settings = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestClosureLaws:
    @common_settings
    @given(attribute_sets(), fd_sets())
    def test_closure_contains_the_set(self, attrs, fds):
        assert set(attrs) <= attribute_closure(attrs, fds)

    @common_settings
    @given(attribute_sets(), fd_sets())
    def test_closure_is_idempotent(self, attrs, fds):
        once = attribute_closure(attrs, fds)
        assert attribute_closure(once, fds) == once

    @common_settings
    @given(attribute_sets(), attribute_sets(), fd_sets())
    def test_closure_is_monotone(self, first, second, fds):
        union = set(first) | set(second)
        assert attribute_closure(first, fds) <= attribute_closure(union, fds)

    @common_settings
    @given(fd_sets())
    def test_every_fd_of_the_set_is_implied(self, fds):
        for fd in fds:
            assert implies_fd(fds, fd)


class TestCoverLaws:
    @common_settings
    @given(fd_sets())
    def test_minimize_preserves_equivalence(self, fds):
        assert equivalent(fds, minimize(fds))

    @common_settings
    @given(fd_sets())
    def test_minimize_output_is_nonredundant(self, fds):
        reduced = minimize(fds)
        for index, fd in enumerate(reduced):
            others = reduced[:index] + reduced[index + 1 :]
            assert not implies_fd(others, fd)

    @common_settings
    @given(fd_sets())
    def test_minimize_never_grows(self, fds):
        nontrivial = [fd for fd in fds if not fd.is_trivial]
        assert len(minimize(fds)) <= len(nontrivial)

    @common_settings
    @given(fd_sets())
    def test_minimum_cover_preserves_equivalence(self, fds):
        assert equivalent(fds, minimum_cover(fds))
        assert equivalent(fds, minimum_cover(fds, merge_lhs=True))

    @common_settings
    @given(fd_sets())
    def test_minimum_cover_has_singleton_rhs(self, fds):
        assert all(len(fd.rhs) == 1 for fd in minimum_cover(fds))


class TestCandidateKeyLaws:
    @common_settings
    @given(fd_sets())
    def test_candidate_keys_determine_everything(self, fds):
        attrs = set(FD_ATTRIBUTES)
        for key in candidate_keys(attrs, fds):
            assert attribute_closure(key, fds) >= attrs

    @common_settings
    @given(fd_sets())
    def test_candidate_keys_are_minimal_and_incomparable(self, fds):
        attrs = set(FD_ATTRIBUTES)
        keys = candidate_keys(attrs, fds)
        for key in keys:
            for attribute in key:
                assert not attribute_closure(key - {attribute}, fds) >= attrs
        for first in keys:
            for second in keys:
                if first != second:
                    assert not first <= second
