"""Differential properties for the PR-2 fast key-implication oracle.

Three layers of agreement, each checked on ≥ 200 random examples:

1. **Containment vs. the recursive reference** — the iterative, cross-call
   memoised ``contains`` must answer exactly like the pre-optimisation
   per-call recursion (kept verbatim as ``_containment_recursive``).

2. **Containment vs. a brute-force word oracle** — an independent decision
   procedure that *enumerates* the covered expression's language (every
   ``//`` expanded to all bounded-length element-label sequences over a
   small alphabet plus fresh labels) and checks each word against a naive
   word matcher for the covering expression.  For the ``{/, //}`` fragment
   a failed containment always has a short witness, so bounded enumeration
   decides these instances exactly.

3. **Engine vs. engine** — a warm (cached, indexed, containment-memoised)
   :class:`ImplicationEngine` must give the same ``implies`` and
   ``attributes_exist`` answers as a fresh engine and as the pre-PR
   reference configuration (linear variant scan + per-call recursive
   containment via ``naive_containment``) over random query streams.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.paper_example import paper_keys
from repro.keys.implication import ImplicationEngine
from repro.keys.key import XMLKey
from repro.xmlmodel.paths import (
    PathExpression,
    StepKind,
    _containment_recursive,
    contains,
    naive_containment,
)

from tests.property.strategies import path_expressions
import pytest

# Hypothesis suites run in their own CI job (see .github/workflows/ci.yml).
pytestmark = pytest.mark.slow

differential_settings = settings(
    max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# 1. Iterative/memoised containment vs. the recursive reference
# ----------------------------------------------------------------------
class TestContainmentMatchesRecursiveReference:
    @differential_settings
    @given(path_expressions(), path_expressions())
    def test_same_verdicts(self, covering, covered):
        expected = _containment_recursive(covered.steps, covering.steps)
        assert contains(covering, covered) == expected
        # A second probe answers from the memo table; it must not drift.
        assert contains(covering, covered) == expected

    @differential_settings
    @given(path_expressions(), path_expressions())
    def test_naive_mode_agrees_and_restores(self, covering, covered):
        fast = contains(covering, covered)
        with naive_containment():
            assert contains(covering, covered) == fast
        assert contains(covering, covered) == fast


# ----------------------------------------------------------------------
# 2. Containment vs. brute-force language enumeration
# ----------------------------------------------------------------------
#: Expansion alphabet: the two element labels the strategies use plus two
#: fresh labels never occurring in any generated expression (containment
#: over an unbounded alphabet must survive labels it has never seen).
_ALPHABET = ("a", "b", "f1", "f2")
_MAX_GAP = 3


def _word_matches(steps, word):
    """Naive, independent membership test: ``word ∈ L(steps)``.

    ``word`` is a tuple of concrete labels (attribute labels carry ``@``).
    A ``//`` step absorbs any run of *element* labels, mirroring the XML
    data model restriction of the containment procedure.
    """
    if not steps:
        return not word
    head, rest = steps[0], steps[1:]
    if head.kind is StepKind.DESCENDANT:
        for absorb in range(len(word) + 1):
            if absorb > 0 and word[absorb - 1].startswith("@"):
                break
            if _word_matches(rest, word[absorb:]):
                return True
        return False
    if not word:
        return False
    return word[0] == head.text and _word_matches(rest, word[1:])


def _bounded_language(steps):
    """All words of ``L(steps)`` with every ``//`` expanded to ≤ _MAX_GAP labels."""
    if not steps:
        yield ()
        return
    head, rest = steps[0], steps[1:]
    if head.kind is StepKind.DESCENDANT:
        for tail in _bounded_language(rest):
            for gap_length in range(_MAX_GAP + 1):
                for gap in itertools.product(_ALPHABET, repeat=gap_length):
                    yield gap + tail
    else:
        for tail in _bounded_language(rest):
            yield (head.text,) + tail


def _small_paths(max_size=4, max_descendants=2):
    return path_expressions(max_size=max_size).filter(
        lambda path: sum(
            1 for step in path.steps if step.kind is StepKind.DESCENDANT
        )
        <= max_descendants
    )


class TestContainmentMatchesBruteForce:
    @differential_settings
    @given(_small_paths(), _small_paths())
    def test_same_verdicts_as_enumeration(self, covering, covered):
        brute = all(
            _word_matches(covering.steps, word)
            for word in _bounded_language(covered.steps)
        )
        assert contains(covering, covered) == brute

    @differential_settings
    @given(_small_paths())
    def test_enumerated_words_belong_to_their_language(self, path):
        for word in itertools.islice(_bounded_language(path.steps), 200):
            assert _word_matches(path.steps, word)


# ----------------------------------------------------------------------
# 3. Warm/indexed engine vs. fresh and reference engines
# ----------------------------------------------------------------------
PAPER_KEYS = paper_keys()
WARM_ENGINE = ImplicationEngine(PAPER_KEYS)

_ATTRIBUTE_POOL = [(), ("isbn",), ("number",), ("isbn", "number"), ("other",)]


def _queries(contexts, targets):
    return st.lists(
        st.builds(
            XMLKey,
            st.sampled_from(contexts),
            st.sampled_from(targets),
            st.sampled_from(_ATTRIBUTE_POOL),
        ),
        min_size=1,
        max_size=8,
    )


_PAPER_CONTEXTS = [".", "//book", "//book/chapter", "r/book", "//book/author"]
_PAPER_TARGETS = [
    ".",
    "//book",
    "book",
    "chapter",
    "title",
    "author/contact",
    "chapter/section",
    "@isbn",
    "@number",
]


class TestWarmEngineMatchesFreshAndReference:
    @differential_settings
    @given(_queries(_PAPER_CONTEXTS, _PAPER_TARGETS))
    def test_implies_stream_agreement(self, queries):
        fresh = ImplicationEngine(PAPER_KEYS)
        with naive_containment():
            reference = ImplicationEngine(PAPER_KEYS, indexed=False)
            reference_answers = [reference.implies(query) for query in queries]
        warm_answers = [WARM_ENGINE.implies(query) for query in queries]
        fresh_answers = [fresh.implies(query) for query in queries]
        assert warm_answers == fresh_answers == reference_answers
        # Replay against the now fully-memoised engines: pure cache reads.
        assert [WARM_ENGINE.implies(query) for query in queries] == warm_answers
        assert [fresh.implies(query) for query in queries] == fresh_answers

    @differential_settings
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["//book", "//book/chapter", "//book/chapter/section", "title"]),
                st.sampled_from([("isbn",), ("number",), ("isbn", "number"), ("other",)]),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_attributes_exist_stream_agreement(self, probes):
        fresh = ImplicationEngine(PAPER_KEYS)
        with naive_containment():
            reference = ImplicationEngine(PAPER_KEYS, indexed=False)
            reference_answers = [
                reference.attributes_exist(path, attrs) for path, attrs in probes
            ]
        warm_answers = [WARM_ENGINE.attributes_exist(path, attrs) for path, attrs in probes]
        fresh_answers = [fresh.attributes_exist(path, attrs) for path, attrs in probes]
        assert warm_answers == fresh_answers == reference_answers

    @differential_settings
    @given(
        st.lists(
            st.builds(
                XMLKey,
                path_expressions(max_size=3),
                path_expressions(max_size=3),
                st.sets(st.sampled_from(["x", "y", "isbn"]), max_size=2).map(frozenset),
            ),
            min_size=1,
            max_size=5,
        ),
        st.lists(
            st.builds(
                XMLKey,
                path_expressions(max_size=3),
                path_expressions(max_size=3),
                st.sets(st.sampled_from(["x", "y", "isbn"]), max_size=2).map(frozenset),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    def test_random_key_sets_agree_with_reference(self, keys, queries):
        indexed = ImplicationEngine(keys)
        with naive_containment():
            reference = ImplicationEngine(keys, indexed=False)
            reference_answers = [reference.implies(query) for query in queries]
        assert [indexed.implies(query) for query in queries] == reference_answers
