"""Retraction properties: ``merge(a, b).subtract(b) == a`` everywhere.

The incremental plane (:mod:`repro.incremental`) leans on one algebraic
fact: every mergeable shard state also supports subtracting the most
recently merged piece, restoring the pre-merge state exactly.  These
properties pin that inverse for random documents, rules, keys and shard
counts, on every state that crosses the merge seams:

* :class:`repro.transform.stream.RuleShardResult` — per-anchor row bags,
  match counters, root value parts;
* :class:`repro.keys.stream.CheckerShardResult` — flushed contexts and the
  root's partial hash indexes, including the node-id rebase round-trip;
* :class:`repro.relational.instance.FDViolationAccumulator` and
  :class:`~repro.relational.instance.RelationInstance` — the relational
  merge layer.

Each property also re-checks that the *merged* answer still matches the
serial plane after a merge → subtract → merge round-trip, so subtraction
cannot quietly corrupt state that later merges depend on.
"""

import copy

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.keys.stream import merge_shard_results, stream_violations
from repro.parallel import _ShardWorker
from repro.transform.stream import merge_rule_shards, stream_evaluate_rule
from repro.xmlmodel.serializer import serialize
from repro.xmlmodel.shards import split_document

from test_parallel_differential import (
    differential_settings,
    fingerprint,
    shard_counts,
    table_rules,
    xml_documents,
    xml_keys,
)

pytestmark = pytest.mark.slow


def _shard_outputs(compact, rules, keys, num_shards):
    """Per-shard mergeable states, or None when the document is unsliceable."""
    shards = split_document(compact, num_shards)
    if shards is None:
        return None, None
    worker = _ShardWorker(shards, rules, keys, strip_whitespace=True)
    return shards, [worker.run(index) for index in range(len(shards))]


class TestRuleShardResultSubtract:
    @differential_settings
    @given(rule=table_rules(), tree=xml_documents(), num_shards=shard_counts)
    def test_merge_then_subtract_restores_state(self, rule, tree, num_shards):
        compact = serialize(tree, indent=0)
        shards, outputs = _shard_outputs(compact, [rule], [], num_shards)
        if outputs is None or len(outputs) < 2:
            return
        states = [output.rules[0] for output in outputs]
        # Fold all shards but the last, snapshot, merge + subtract the last.
        accumulated = states[0]
        for state in states[1:-1]:
            accumulated.merge(state)
        snapshot = copy.deepcopy(accumulated)
        accumulated.merge(states[-1]).subtract(states[-1])
        assert accumulated == snapshot
        # The round-trip must not have corrupted anything the final merge
        # needs: re-merging still reproduces the serial row list.
        accumulated.merge(states[-1])
        merged = merge_rule_shards(rule, [accumulated], deduplicate=False)
        serial = stream_evaluate_rule(rule, compact, deduplicate=False)
        assert list(merged) == [row.as_dict() for row in serial.rows]

    @differential_settings
    @given(rule=table_rules(), tree=xml_documents(), num_shards=shard_counts)
    def test_subtracting_foreign_state_raises(self, rule, tree, num_shards):
        compact = serialize(tree, indent=0)
        shards, outputs = _shard_outputs(compact, [rule], [], num_shards)
        if outputs is None or len(outputs) < 2:
            return
        states = [output.rules[0] for output in outputs]
        first, second = states[0], states[1]
        if any(first.anchor_rows) and first.anchor_rows != second.anchor_rows:
            merged = copy.deepcopy(second)
            for state in states[2:]:
                merged.merge(state)
            # ``first`` was never merged into this state; unless its rows
            # happen to coincide with the real suffix, subtract must raise
            # rather than silently drop the wrong rows.
            snapshot = copy.deepcopy(merged)
            try:
                merged.subtract(first)
            except ValueError:
                assert merged == snapshot


class TestCheckerShardResultSubtract:
    @differential_settings
    @given(
        tree=xml_documents(),
        keys=st.lists(xml_keys(), min_size=1, max_size=3),
        num_shards=shard_counts,
    )
    def test_merge_then_subtract_restores_state(self, tree, keys, num_shards):
        compact = serialize(tree, indent=0)
        shards, outputs = _shard_outputs(compact, [], keys, num_shards)
        if outputs is None or len(outputs) < 2:
            return
        states = [output.checker for output in outputs]
        prologue_ids = shards.prologue_ids
        accumulated = states[0]
        for state in states[1:-1]:
            accumulated.merge(state, prologue_ids)
        snapshot = copy.deepcopy(accumulated)
        accumulated.merge(states[-1], prologue_ids)
        accumulated.subtract(states[-1], prologue_ids)
        # Structural equality, node-id rebase round-trip included: the
        # subtracted ids must come back down to the pre-merge values.
        assert accumulated == snapshot
        accumulated.merge(states[-1], prologue_ids)
        merged = merge_shard_results(keys, [accumulated], prologue_ids)
        serial = stream_violations(compact, keys)
        assert fingerprint(merged) == fingerprint(serial)

    @differential_settings
    @given(
        tree=xml_documents(),
        keys=st.lists(xml_keys(), min_size=1, max_size=3),
        num_shards=shard_counts,
    )
    def test_fold_equals_merge_shard_results(self, tree, keys, num_shards):
        from repro.keys.stream import CheckerShardResult

        compact = serialize(tree, indent=0)
        shards, outputs = _shard_outputs(compact, [], keys, num_shards)
        if outputs is None:
            return
        states = [output.checker for output in outputs]
        prologue_ids = shards.prologue_ids
        reference = merge_shard_results(
            keys, copy.deepcopy(states), prologue_ids
        )
        # Folding the binary merge from the left identity must agree.
        folded = CheckerShardResult(consumed=prologue_ids)
        for state in states:
            folded.merge(state, prologue_ids)
        assert fingerprint(
            merge_shard_results(keys, [folded], prologue_ids)
        ) == fingerprint(reference)


class TestRelationalSubtract:
    rows_strategy = st.lists(
        st.tuples(
            st.sampled_from(["0", "1", None]),
            st.sampled_from(["0", "1", None]),
            st.sampled_from(["0", "1", None]),
        ),
        max_size=12,
    )

    @staticmethod
    def _instance(rows):
        from repro.relational.instance import NULL, RelationInstance
        from repro.relational.schema import RelationSchema

        schema = RelationSchema("R", ["a", "b", "c"])
        return RelationInstance(
            schema,
            [{"a": a or NULL, "b": b or NULL, "c": c or NULL} for a, b, c in rows],
        )

    @differential_settings
    @given(rows=rows_strategy, cut=st.integers(min_value=0, max_value=12))
    def test_accumulator_merge_subtract_round_trip(self, rows, cut):
        from repro.relational.instance import FDViolationAccumulator

        cut = min(cut, len(rows))
        instance = self._instance(rows)
        head = FDViolationAccumulator(["a"], ["b"])
        for row in instance.rows[:cut]:
            head.observe(row)
        tail = FDViolationAccumulator(["a"], ["b"])
        for row in instance.rows[cut:]:
            tail.observe(row)
        snapshot = copy.deepcopy(head)
        head.merge(tail).subtract(tail)
        assert head == snapshot
        # And the round-trip still finalizes to the serial answer.
        head.merge(tail)
        assert head.finalize() == instance.fd_violations(["a"], ["b"])

    @differential_settings
    @given(rows=rows_strategy, cut=st.integers(min_value=0, max_value=12))
    def test_instance_merge_subtract_round_trip(self, rows, cut):
        cut = min(cut, len(rows))
        instance = self._instance(rows)
        head = self._instance(rows[:cut])
        tail = self._instance(rows[cut:])
        merged = head.merge(tail)
        assert merged.rows == instance.rows
        restored = merged.subtract(tail)
        assert restored.rows == head.rows
        assert restored.rows == instance.rows[:cut]

    @differential_settings
    @given(rows=rows_strategy)
    def test_subtracting_rows_never_merged_raises(self, rows):
        instance = self._instance(rows)
        foreign = self._instance([("0", "0", "0")] * (len(rows) + 1))
        with pytest.raises(ValueError):
            instance.subtract(foreign)
