"""Soundness of propagation: a propagated FD holds on every conformant document.

For random documents satisfying the paper's keys and random FDs over the
relations of Example 2.4 (and the universal relation of Example 3.1): if
Algorithm ``propagation`` declares the FD propagated, the instance shredded
from the document must satisfy it.  This is the defining property of
``Σ ⊨_σ φ`` and the strongest end-to-end check the library has.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.minimum_cover import minimum_cover_from_keys
from repro.core.propagation import check_propagation
from repro.experiments.paper_example import (
    paper_keys,
    paper_transformation,
    universal_relation,
)
from repro.keys.implication import ImplicationEngine
from repro.relational.fd import FunctionalDependency
from repro.transform.evaluate import evaluate_rule

from tests.property.strategies import paper_conformant_documents
import pytest

# Hypothesis suites run in their own CI job (see .github/workflows/ci.yml).
pytestmark = pytest.mark.slow


PAPER_KEYS = paper_keys()
ENGINE = ImplicationEngine(PAPER_KEYS)
SIGMA = paper_transformation()
UNIVERSAL = universal_relation()
UNIVERSAL_COVER = minimum_cover_from_keys(PAPER_KEYS, UNIVERSAL).cover

common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def random_fd(fields):
    return st.builds(
        FunctionalDependency,
        st.sets(st.sampled_from(fields), min_size=0, max_size=3),
        st.sets(st.sampled_from(fields), min_size=1, max_size=1),
    )


class TestPropagationSoundnessOnRelations:
    @common_settings
    @given(
        st.sampled_from(["book", "chapter", "section"]),
        st.data(),
        paper_conformant_documents(),
    )
    def test_propagated_fd_holds_on_shredded_instance(self, relation, data, doc):
        rule = SIGMA.rule(relation)
        fd = data.draw(random_fd(rule.field_names))
        result = check_propagation(PAPER_KEYS, rule, fd, engine=ENGINE)
        if result.holds:
            instance = evaluate_rule(rule, doc)
            assert instance.satisfies_fd(fd.lhs, fd.rhs), f"{fd} on {relation}"


class TestMinimumCoverSoundnessOnUniversalRelation:
    @common_settings
    @given(paper_conformant_documents())
    def test_cover_fds_hold_on_every_conformant_document(self, doc):
        instance = evaluate_rule(UNIVERSAL.rule, doc)
        for fd in UNIVERSAL_COVER:
            assert instance.satisfies_fd(fd.lhs, fd.rhs), str(fd)

    @common_settings
    @given(st.data(), paper_conformant_documents())
    def test_propagation_on_universal_relation(self, data, doc):
        fd = data.draw(random_fd(UNIVERSAL.rule.field_names))
        result = check_propagation(PAPER_KEYS, UNIVERSAL.rule, fd, engine=ENGINE)
        if result.holds:
            instance = evaluate_rule(UNIVERSAL.rule, doc)
            assert instance.satisfies_fd(fd.lhs, fd.rhs), str(fd)


class TestAgreementBetweenCheckers:
    @common_settings
    @given(st.data())
    def test_gminimum_cover_agrees_with_propagation(self, data):
        from repro.core.gminimum_cover import gminimum_cover_check

        fd = data.draw(random_fd(UNIVERSAL.rule.field_names))
        direct = check_propagation(PAPER_KEYS, UNIVERSAL.rule, fd, engine=ENGINE)
        via_cover = gminimum_cover_check(PAPER_KEYS, UNIVERSAL.rule, fd, engine=ENGINE)
        assert direct.holds == via_cover.holds, str(fd)
