"""Differential tests: the bitset engine must agree with the frozenset oracle.

The bitset engine of :mod:`repro.relational.bitset` is a from-scratch
reimplementation of every closure-based routine in
:mod:`repro.relational.fd`; these Hypothesis properties assert that on random
FD sets the two engines return *identical* results — same attribute sets,
same FDs, same list order — so the engine switch can never silently change
the output of any algorithm built on top.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.fd import (
    FunctionalDependency,
    attribute_closure,
    equivalent,
    implies_fd,
    minimize,
    minimum_cover,
)

from tests.property.strategies import attribute_sets, fd_sets
import pytest

# Hypothesis suites run in their own CI job (see .github/workflows/ci.yml).
pytestmark = pytest.mark.slow

differential_settings = settings(max_examples=200, deadline=None)


class TestClosureAgrees:
    @differential_settings
    @given(fds=fd_sets(), start=attribute_sets(0, 3))
    def test_attribute_closure_identical(self, fds, start):
        fast = attribute_closure(start, fds, engine="bitset")
        slow = attribute_closure(start, fds, engine="frozenset")
        assert fast == slow

    @differential_settings
    @given(fds=fd_sets(), start=attribute_sets(0, 3))
    def test_closure_contains_start_and_is_monotone(self, fds, start):
        closure = attribute_closure(start, fds, engine="bitset")
        assert frozenset(start) <= closure
        assert attribute_closure(closure, fds, engine="bitset") == closure


class TestImplicationAgrees:
    @differential_settings
    @given(
        fds=fd_sets(),
        lhs=attribute_sets(0, 3),
        rhs=attribute_sets(1, 2),
    )
    def test_implies_fd_identical(self, fds, lhs, rhs):
        candidate = FunctionalDependency(lhs, rhs)
        fast = implies_fd(fds, candidate, engine="bitset")
        slow = implies_fd(fds, candidate, engine="frozenset")
        assert fast == slow

    @differential_settings
    @given(first=fd_sets(max_fds=4), second=fd_sets(max_fds=4))
    def test_equivalent_identical(self, first, second):
        fast = equivalent(first, second, engine="bitset")
        slow = equivalent(first, second, engine="frozenset")
        assert fast == slow


class TestMinimizeAgrees:
    @differential_settings
    @given(fds=fd_sets())
    def test_minimize_identical_including_order(self, fds):
        fast = minimize(fds, engine="bitset")
        slow = minimize(fds, engine="frozenset")
        assert fast == slow

    @differential_settings
    @given(fds=fd_sets())
    def test_minimize_preserves_equivalence(self, fds):
        reduced = minimize(fds, engine="bitset")
        assert equivalent(fds, reduced, engine="bitset")
        assert equivalent(fds, reduced, engine="frozenset")


class TestMinimumCoverAgrees:
    @differential_settings
    @given(fds=fd_sets(), merge=st.booleans())
    def test_minimum_cover_identical_including_order(self, fds, merge):
        fast = minimum_cover(fds, merge_lhs=merge, engine="bitset")
        slow = minimum_cover(fds, merge_lhs=merge, engine="frozenset")
        assert fast == slow

    @differential_settings
    @given(fds=fd_sets())
    def test_cover_is_singleton_rhs_and_equivalent(self, fds):
        cover = minimum_cover(fds, engine="bitset")
        assert all(len(fd.rhs) == 1 for fd in cover)
        assert equivalent(fds, cover, engine="frozenset")
