"""Differential pinning of the parallel (sharded) plane, three ways.

The shard → map → merge pipeline of :mod:`repro.parallel` must be
indistinguishable from one serial pass, which itself is pinned against the
DOM plane by ``test_shred_differential.py``.  These properties close the
triangle for random documents, rules, keys and shard counts:

* **Splitting** — reassembling the shard slices must reproduce the serial
  tokenizer's event stream event-for-event (ids, text segmentation,
  attribute order), for any shard count;

* **Shredding** — the merged per-rule shard states must equal the serial
  streaming evaluator's row list *exactly* (same rows, same order, bag and
  set semantics) and the DOM evaluator's bag;

* **Key checking** — the merged checker states must equal the serial
  streaming checker violation-for-violation — same kinds, witnesses,
  context ids, node ids *and detail strings* — and the DOM checker's
  canonical verdicts.

The shard tasks run in-process here (``use_processes=False``): the merge
logic, the id rebasing and the prologue handling are identical, and 200
examples per property stay fast.  The real process pool is exercised by
``tests/test_parallel.py`` and ``benchmarks/bench_parallel.py``.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.keys.key import XMLKey
from repro.keys.satisfaction import violations
from repro.parallel import run_sharded
from repro.transform.rule import TableRule
from repro.transform.evaluate import evaluate_rule
from repro.transform.stream import stream_evaluate_rule
from repro.xmlmodel.builder import document, element, text
from repro.xmlmodel.events import iter_events
from repro.xmlmodel.serializer import serialize
from repro.xmlmodel.shards import split_document

pytestmark = pytest.mark.slow

differential_settings = settings(
    max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

LABELS = ["a", "b", "c"]
ATTRIBUTES = ["x", "y"]
VALUES = ["0", "1"]


# ----------------------------------------------------------------------
# Random documents whose roots have several top-level subtrees, so the
# splitter always has boundaries to cut at (small vocabulary → natural
# duplicate values, including across the future shard boundaries).
# ----------------------------------------------------------------------
@st.composite
def xml_documents(draw):
    def build(depth):
        node = element(draw(st.sampled_from(LABELS)))
        for name in ATTRIBUTES:
            if draw(st.booleans()):
                node.set_attribute(name, draw(st.sampled_from(VALUES)))
        if depth < 3:
            for _ in range(draw(st.integers(min_value=0, max_value=2))):
                if draw(st.integers(min_value=0, max_value=4)) == 0:
                    node.append_child(text(draw(st.sampled_from(["t", "u"]))))
                else:
                    node.append_child(build(depth + 1))
        return node

    root = element(draw(st.sampled_from(LABELS)))
    for name in ATTRIBUTES:
        if draw(st.booleans()):
            root.set_attribute(name, draw(st.sampled_from(VALUES)))
    for _ in range(draw(st.integers(min_value=2, max_value=5))):
        if draw(st.integers(min_value=0, max_value=5)) == 0:
            root.append_child(text(draw(st.sampled_from(["t", "u"]))))
        else:
            root.append_child(build(1))
    return document(root)


@st.composite
def anchor_paths(draw):
    parts = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        prefix = draw(st.sampled_from(["//", ""]))
        parts.append(prefix + draw(st.sampled_from(LABELS)))
    if draw(st.booleans()):
        parts.append("@" + draw(st.sampled_from(ATTRIBUTES)))
    return "/".join(parts)


@st.composite
def simple_paths(draw):
    parts = [
        draw(st.sampled_from(LABELS))
        for _ in range(draw(st.integers(min_value=1, max_value=2)))
    ]
    if draw(st.booleans()):
        parts.append("@" + draw(st.sampled_from(ATTRIBUTES)))
    return "/".join(parts)


@st.composite
def table_rules(draw):
    rule = TableRule("R")
    counter = [0]

    def fresh():
        counter[0] += 1
        return f"v{counter[0]}"

    leaves = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        anchor = fresh()
        rule.add_mapping(anchor, rule.root_variable, draw(anchor_paths()))
        frontier = [anchor]
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            parent = draw(st.sampled_from(frontier))
            child = fresh()
            rule.add_mapping(child, parent, draw(simple_paths()))
            frontier.append(child)
        sources = {m.source for m in rule.mappings}
        leaves.extend(v for v in frontier if v not in sources)
    for index, leaf in enumerate(dict.fromkeys(leaves)):
        rule.add_field(f"f{index}", leaf)
    return rule


@st.composite
def key_paths(draw, allow_attribute=True):
    parts = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        parts.append(draw(st.sampled_from(["//", ""])) + draw(st.sampled_from(LABELS)))
    body = "/".join(parts).replace("///", "//")
    if allow_attribute and draw(st.integers(min_value=0, max_value=3)) == 0:
        body += "/@" + draw(st.sampled_from(ATTRIBUTES))
    return body


@st.composite
def xml_keys(draw):
    context = draw(st.one_of(st.just("."), key_paths()))
    target = draw(key_paths())
    attributes = draw(st.lists(st.sampled_from(ATTRIBUTES), max_size=2, unique=True))
    return XMLKey(context, target, attributes)


shard_counts = st.integers(min_value=2, max_value=5)


def row_bag(instance):
    return Counter(instance.rows)


def fingerprint(found):
    """Everything a violation reports, down to the rendered detail."""
    return [
        (v.key.text, v.context_node_id, v.kind, v.node_ids, v.detail) for v in found
    ]


def canonical(found):
    return sorted(
        (v.key.text, v.context_node_id, v.kind, tuple(sorted(v.node_ids)))
        for v in found
    )


# ----------------------------------------------------------------------
# 1. The splitter: shard replay ≡ serial tokenization
# ----------------------------------------------------------------------
class TestSplitterDifferential:
    @differential_settings
    @given(tree=xml_documents(), num_shards=shard_counts, strip=st.booleans())
    def test_shard_replay_equals_serial_events(self, tree, num_shards, strip):
        compact = serialize(tree, indent=0)
        shards = split_document(compact, num_shards)
        if shards is None:
            return  # unsliceable inputs fall back to the serial plane
        assert 2 <= len(shards) <= num_shards
        assert sum(piece.subtrees for piece in shards.slices) >= len(shards)
        replayed = list(shards.replay_events(strip_whitespace=strip))
        serial = list(iter_events(compact, strip_whitespace=strip))
        assert replayed == serial


# ----------------------------------------------------------------------
# 2. Shredding: merged shard states ≡ serial streaming ≡ DOM
# ----------------------------------------------------------------------
class TestShardedShredDifferential:
    @differential_settings
    @given(rule=table_rules(), tree=xml_documents(), num_shards=shard_counts)
    def test_bag_semantics_agree(self, rule, tree, num_shards):
        compact = serialize(tree, indent=0)
        serial = stream_evaluate_rule(rule, compact, deduplicate=False)
        sharded = run_sharded(
            compact,
            transformation=[rule],
            deduplicate=False,
            jobs=num_shards,
            use_processes=False,
        )
        # Exact row order, not just the bag: the merge restores document order.
        assert sharded.instances["R"].rows == serial.rows
        # Against the DOM plane on the reparsed text (serialization
        # normalizes whitespace text nodes, as in test_shred_differential).
        from repro.xmlmodel.parser import parse_document

        dom = evaluate_rule(rule, parse_document(compact), deduplicate=False)
        assert row_bag(dom) == row_bag(sharded.instances["R"])

    @differential_settings
    @given(rule=table_rules(), tree=xml_documents(), num_shards=shard_counts)
    def test_set_semantics_agree(self, rule, tree, num_shards):
        compact = serialize(tree, indent=0)
        serial = stream_evaluate_rule(rule, compact, deduplicate=True)
        sharded = run_sharded(
            compact,
            transformation=[rule],
            deduplicate=True,
            jobs=num_shards,
            use_processes=False,
        )
        assert sharded.instances["R"].rows == serial.rows
        assert len(sharded.instances["R"].rows) == len(set(sharded.instances["R"].rows))


# ----------------------------------------------------------------------
# 3. Key checking: merged checker states ≡ serial streaming ≡ DOM
# ----------------------------------------------------------------------
class TestShardedCheckerDifferential:
    @differential_settings
    @given(
        tree=xml_documents(),
        keys=st.lists(xml_keys(), min_size=1, max_size=4),
        num_shards=shard_counts,
    )
    def test_violations_agree_with_serial_exactly(self, tree, keys, num_shards):
        from repro.keys.stream import stream_violations

        compact = serialize(tree, indent=0)
        serial = stream_violations(compact, keys)
        sharded = run_sharded(
            compact, keys=keys, jobs=num_shards, use_processes=False
        )
        assert fingerprint(sharded.violations) == fingerprint(serial)

    @differential_settings
    @given(
        tree=xml_documents(),
        keys=st.lists(xml_keys(), min_size=1, max_size=3),
        num_shards=shard_counts,
    )
    def test_violations_agree_with_dom(self, tree, keys, num_shards):
        compact = serialize(tree, indent=0)
        from repro.xmlmodel.parser import parse_document

        reparsed = parse_document(compact)
        dom = [v for key in keys for v in violations(reparsed, key)]
        sharded = run_sharded(
            compact, keys=keys, jobs=num_shards, use_processes=False
        )
        assert canonical(sharded.violations) == canonical(dom)


# ----------------------------------------------------------------------
# 4. The relational merge layer: accumulators and instance merging
# ----------------------------------------------------------------------
class TestMergeableViolationAccumulators:
    @differential_settings
    @given(
        rows=st.lists(
            st.tuples(
                st.sampled_from(["0", "1", None]),
                st.sampled_from(["0", "1", None]),
                st.sampled_from(["0", "1", None]),
            ),
            max_size=12,
        ),
        cut_points=st.lists(st.integers(min_value=0, max_value=12), max_size=3),
    )
    def test_split_merge_equals_serial(self, rows, cut_points):
        from repro.relational.instance import (
            NULL,
            FDViolationAccumulator,
            RelationInstance,
        )
        from repro.relational.schema import RelationSchema

        schema = RelationSchema("R", ["a", "b", "c"])
        instance = RelationInstance(
            schema,
            [
                {"a": a or NULL, "b": b or NULL, "c": c or NULL}
                for a, b, c in rows
            ],
        )
        serial = instance.fd_violations(["a"], ["b"])

        # Split the rows at arbitrary points, accumulate each piece
        # separately, merge in order: must reproduce the serial answer.
        bounds = sorted({min(p, len(rows)) for p in cut_points} | {0, len(rows)})
        merged = FDViolationAccumulator(["a"], ["b"])
        pieces = []
        for lo, hi in zip(bounds, bounds[1:]):
            piece = FDViolationAccumulator(["a"], ["b"])
            for row in instance.rows[lo:hi]:
                piece.observe(row)
            pieces.append(piece)
        for piece in pieces:
            merged.merge(piece)
        assert merged.finalize() == serial

        # RelationInstance.merge is the same associativity at row level.
        parts = [
            RelationInstance(schema, (r.as_dict() for r in instance.rows[lo:hi]))
            for lo, hi in zip(bounds, bounds[1:])
        ]
        if parts:
            recombined = parts[0].merge(*parts[1:])
            assert recombined.rows == instance.rows
            assert recombined.fd_violations(["a"], ["b"]) == serial
