"""Parser/serializer round-trip fuzzing.

For data-centric documents (the documents the paper shreds: no mixed
content, at most one text run per leaf) ``parse(serialize(tree))`` must
reproduce the tree node-for-node — tags, attribute order and values,
text — and ``parse(serialize(parse(doc)))`` must be identity on parsed
documents, including the edge cases the serializer has to escape (quotes,
angle brackets, ampersands, entity-looking text) and the ones the parser
has to assemble (CDATA runs, character references, attribute ordering).
The event tokenizer is held to the same round trip.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.xmlmodel.builder import document, element, text
from repro.xmlmodel.events import iter_events, tree_from_events
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serializer import serialize

pytestmark = pytest.mark.slow

roundtrip_settings = settings(
    max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_NAMES = ["a", "b", "chapter", "x-1", "_n"]
# Attribute values may contain everything the serializer must escape; our
# parser does not normalize whitespace in attribute values, so tabs and
# newlines round-trip too.
_ATTR_VALUES = st.text(
    alphabet='abc<>&"\'\t\n ;#x0123', min_size=0, max_size=8
)
# Text content: no leading/trailing whitespace (the pretty-printer owns the
# surrounding whitespace) and not whitespace-only (stripped at parse time).
_TEXT = (
    st.text(alphabet="abc<>&'\";#x012 ", min_size=1, max_size=10)
    .map(str.strip)
    .filter(lambda value: value)
)


@st.composite
def data_centric_trees(draw):
    """Trees in the serializer's data-centric shape: an element holds either
    one text run or child elements, never mixed content."""

    def build(depth):
        node = element(draw(st.sampled_from(_NAMES)))
        for name in draw(st.lists(st.sampled_from(["p", "q", "r"]), max_size=3, unique=True)):
            node.set_attribute(name, draw(_ATTR_VALUES))
        if depth < 3 and draw(st.booleans()):
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                node.append_child(build(depth + 1))
        elif draw(st.booleans()):
            node.append_child(text(draw(_TEXT)))
        return node

    return document(build(0))


def assert_trees_equal(left, right):
    assert left.root is not None
    stack = [(left.root, right.root)]
    while stack:
        a, b = stack.pop()
        assert a.tag == b.tag
        assert [(n.name, n.value) for n in a.attributes.values()] == [
            (n.name, n.value) for n in b.attributes.values()
        ]
        assert len(a.children) == len(b.children)
        for ca, cb in zip(a.children, b.children):
            assert ca.kind == cb.kind
            if ca.is_text():
                assert ca.text == cb.text
            else:
                stack.append((ca, cb))
    # Same structure → same document-order identifiers.
    assert [(n.node_id, n.label) for n in left.iter_nodes()] == [
        (n.node_id, n.label) for n in right.iter_nodes()
    ]


class TestSerializeParseRoundTrip:
    @roundtrip_settings
    @given(tree=data_centric_trees(), indent=st.sampled_from([0, 2, 4]))
    def test_parse_of_serialize_is_identity(self, tree, indent):
        reparsed = parse_document(serialize(tree, indent=indent))
        assert_trees_equal(tree, reparsed)

    @roundtrip_settings
    @given(tree=data_centric_trees())
    def test_parse_serialize_parse_fixpoint(self, tree):
        first = parse_document(serialize(tree))
        second = parse_document(serialize(first))
        assert_trees_equal(first, second)
        assert serialize(first) == serialize(second)

    @roundtrip_settings
    @given(tree=data_centric_trees(), indent=st.sampled_from([0, 2]))
    def test_tokenizer_round_trip_matches(self, tree, indent):
        text_form = serialize(tree, indent=indent)
        assert_trees_equal(tree, tree_from_events(iter_events(text_form)))


class TestHandwrittenEdgeCases:
    @pytest.mark.parametrize(
        "doc",
        [
            "<a>x<![CDATA[<not-a-tag>&amp;]]>y</a>",
            "<a><![CDATA[]]></a>",
            '<a v="&quot;&apos;&lt;&gt;&amp;">&#65;&#x42;</a>',
            "<a>&undefined; &amp standalone &;</a>",
            '<a z="1" a="2" m="3"><b b="1" a="2"/></a>',
            "<a>  padded  </a>",
            '<?xml version="1.0"?><!DOCTYPE a [<!ENTITY x "y">]><a><!-- c --><b/></a>',
        ],
    )
    def test_parse_serialize_parse_is_identity(self, doc):
        first = parse_document(doc)
        second = parse_document(serialize(first))
        assert_trees_equal(first, second)
        # And through the tokenizer.
        assert_trees_equal(first, tree_from_events(iter_events(serialize(first))))

    def test_attribute_order_preserved(self):
        doc = '<a z="1" a="2" m="3"/>'
        reparsed = parse_document(serialize(parse_document(doc)))
        assert [n.name for n in reparsed.root.attributes.values()] == ["z", "a", "m"]
