"""Properties of the shredding semantics (rule evaluation)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.design.refine import restrict_rule
from repro.experiments.paper_example import paper_transformation, universal_relation
from repro.relational import algebra
from repro.relational.instance import is_null
from repro.transform.evaluate import evaluate_rule

from tests.property.strategies import paper_conformant_documents
import pytest

# Hypothesis suites run in their own CI job (see .github/workflows/ci.yml).
pytestmark = pytest.mark.slow


SIGMA = paper_transformation()
UNIVERSAL = universal_relation()

common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestEvaluationBasics:
    @common_settings
    @given(st.sampled_from(["book", "chapter", "section"]), paper_conformant_documents())
    def test_rows_cover_exactly_the_schema(self, relation, doc):
        rule = SIGMA.rule(relation)
        instance = evaluate_rule(rule, doc)
        for row in instance:
            assert set(row.keys()) == set(rule.field_names)

    @common_settings
    @given(st.sampled_from(["book", "chapter", "section"]), paper_conformant_documents())
    def test_deduplicated_evaluation_is_a_subset_of_the_bag(self, relation, doc):
        rule = SIGMA.rule(relation)
        dedup = evaluate_rule(rule, doc)
        bag = evaluate_rule(rule, doc, deduplicate=False)
        assert len(dedup) <= len(bag)
        assert set(dedup.rows) <= set(bag.rows)

    @common_settings
    @given(paper_conformant_documents())
    def test_book_rows_match_book_elements(self, doc):
        instance = evaluate_rule(SIGMA.rule("book"), doc)
        books = doc.elements_by_tag("book")
        if books:
            isbns = {row["isbn"] for row in instance if not is_null(row["isbn"])}
            assert isbns == {book.attribute_value("isbn") for book in books}
        else:
            # With no book at all, the Cartesian semantics yields one all-null row.
            assert len(instance) == 1
            assert instance.rows[0].has_null()


class TestRestrictionIsProjection:
    """Evaluating a restricted rule equals projecting the universal instance."""

    @common_settings
    @given(
        st.sampled_from(
            [
                ("bookIsbn", "bookTitle"),
                ("bookIsbn", "chapNum", "chapName"),
                ("bookIsbn", "chapNum", "secNum", "secName"),
                ("bookIsbn", "bookAuthor"),
            ]
        ),
        paper_conformant_documents(),
    )
    def test_projection_equivalence(self, fields, doc):
        restricted = restrict_rule(UNIVERSAL.rule, list(fields), "fragment")
        direct = evaluate_rule(restricted, doc)
        universal_instance = evaluate_rule(UNIVERSAL.rule, doc)
        projected = algebra.project(universal_instance, list(fields), name="fragment")
        assert set(direct.rows) == set(projected.rows)
