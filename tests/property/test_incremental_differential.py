"""Differential pinning of the incremental plane against from-scratch runs.

The contract of :class:`repro.incremental.IncrementalEngine` is absolute:
after *any* sequence of subtree deltas, the engine must be
indistinguishable — violations down to their detail strings, relation rows
down to their order, database contents down to the NULL row — from
throwing the state away and re-running the batch planes on the edited
text.  These properties drive random delta programs (insert / delete /
replace with random fragments at random positions) against random
documents, rules and keys, and check that equivalence after every step:

* **Violations** — the engine's merged checker answer equals
  :func:`~repro.keys.stream.stream_violations` on ``engine.text()``;

* **Shredding** — the engine's merged instances equal
  :func:`~repro.transform.stream.stream_evaluate_rule` on the same text,
  row-for-row;

* **Reports** — each :class:`~repro.incremental.DeltaReport`'s
  appeared/disappeared lists reconcile the before and after violation bags;

* **Storage** — a database kept in step by
  :class:`~repro.incremental.DeltaStore` (log mode, so no delta is
  rejected) holds exactly the rows a fresh bulk load of the final text
  would produce.

Documents the engine cannot index (childless roots) and rules it cannot
maintain (root-bound anchors) are skipped — the batch planes remain the
right tool for those, and their fallbacks are pinned by the unit tests.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.incremental import DeltaStore, IncrementalEngine, delete, insert, replace
from repro.keys.stream import stream_violations
from repro.relational.sql import encode_row
from repro.storage import BulkLoader, SQLiteBackend, StorageDDL, compile_table_ddl
from repro.transform.stream import stream_evaluate_rule
from repro.xmlmodel.builder import element, text
from repro.xmlmodel.serializer import serialize

from test_parallel_differential import (
    ATTRIBUTES,
    LABELS,
    VALUES,
    differential_settings,
    fingerprint,
    table_rules,
    xml_documents,
    xml_keys,
)

pytestmark = pytest.mark.slow


# ----------------------------------------------------------------------
# Random fragments and delta programs
# ----------------------------------------------------------------------
@st.composite
def subtree_fragments(draw):
    """One serialized element subtree, from the documents' vocabulary."""

    def build(depth):
        node = element(draw(st.sampled_from(LABELS)))
        for name in ATTRIBUTES:
            if draw(st.booleans()):
                node.set_attribute(name, draw(st.sampled_from(VALUES)))
        if depth < 3:
            for _ in range(draw(st.integers(min_value=0, max_value=2))):
                if draw(st.integers(min_value=0, max_value=4)) == 0:
                    node.append_child(text(draw(st.sampled_from(["t", "u"]))))
                else:
                    node.append_child(build(depth + 1))
        return node

    return serialize(build(1), indent=0)


@st.composite
def delta_programs(draw):
    """1–5 delta operations; positions resolve against the live count."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        kind = draw(st.sampled_from(["insert", "delete", "replace"]))
        seed = draw(st.integers(min_value=0, max_value=99))
        fragment = draw(subtree_fragments()) if kind != "delete" else None
        ops.append((kind, seed, fragment))
    return ops


def _ordered(rows):
    """Rows sorted with NULLs last (tuples mix None and str)."""
    return sorted(rows, key=lambda row: tuple((v is None, v or "") for v in row))


def _resolve(engine, kind, seed, fragment):
    """Turn a program step into an applicable Delta, or None to skip."""
    count = engine.subtree_count
    if kind == "insert":
        return insert(seed % (count + 1), fragment)
    if count == 0:
        return None  # nothing to delete or replace
    if kind == "delete":
        return delete(seed % count)
    return replace(seed % count, fragment)


def _build_engine(rule, keys, doc):
    """An indexed engine, or None when this input is out of scope."""
    try:
        engine = IncrementalEngine([rule] if rule is not None else None, keys)
    except ValueError:
        return None  # root-bound rule: cannot be maintained incrementally
    try:
        engine.load(doc)
    except ValueError:
        return None  # childless root: nothing to slice at
    return engine


# ----------------------------------------------------------------------
# 1. Engine answers ≡ from-scratch batch runs, after every delta
# ----------------------------------------------------------------------
class TestEngineDifferential:
    @differential_settings
    @given(
        tree=xml_documents(),
        rule=table_rules(),
        keys=st.lists(xml_keys(), min_size=1, max_size=3),
        program=delta_programs(),
    )
    def test_every_step_matches_batch(self, tree, rule, keys, program):
        doc = serialize(tree, indent=0)
        engine = _build_engine(rule, keys, doc)
        if engine is None:
            return
        for kind, seed, fragment in program:
            step = _resolve(engine, kind, seed, fragment)
            if step is None:
                continue
            before = Counter(fingerprint(engine.violations()))
            report = engine.apply(step)
            after = Counter(fingerprint(engine.violations()))
            # The report reconciles the two violation bags exactly.
            assert after == (
                before
                - Counter(fingerprint(report.disappeared))
                + Counter(fingerprint(report.appeared))
            )
            assert report.violations == sum(after.values())
            assert report.subtrees == engine.subtree_count
            # Violations: byte-identical to a fresh streaming check.
            current = engine.text()
            assert fingerprint(engine.violations()) == fingerprint(
                stream_violations(current, keys)
            )
            # Shredding: row-identical to a fresh streaming evaluation.
            serial = stream_evaluate_rule(rule, current, deduplicate=True)
            assert engine.instances()["R"].rows == serial.rows

    @differential_settings
    @given(
        tree=xml_documents(),
        keys=st.lists(xml_keys(), min_size=1, max_size=3),
        program=delta_programs(),
    )
    def test_reindexing_own_text_is_identity(self, tree, keys, program):
        doc = serialize(tree, indent=0)
        engine = _build_engine(None, keys, doc)
        if engine is None:
            return
        for kind, seed, fragment in program:
            step = _resolve(engine, kind, seed, fragment)
            if step is not None:
                engine.apply(step)
        # A fresh engine indexing the edited text answers identically:
        # the incremental state never drifts from what the text implies.
        fresh = _build_engine(None, keys, engine.text())
        if fresh is None:
            assert engine.subtree_count == 0
            return
        assert fingerprint(fresh.violations()) == fingerprint(engine.violations())
        assert fresh.text() == engine.text()


# ----------------------------------------------------------------------
# 2. An attached database never drifts from a fresh bulk load
# ----------------------------------------------------------------------
class TestStoreDifferential:
    @differential_settings
    @given(
        tree=xml_documents(),
        rule=table_rules(),
        program=delta_programs(),
    )
    def test_database_matches_fresh_load_of_final_text(self, tree, rule, program):
        doc = serialize(tree, indent=0)
        engine = _build_engine(rule, [], doc)
        if engine is None:
            return
        ddl = StorageDDL(
            mode="log",
            tables={"R": compile_table_ddl(rule.schema(), [], mode="log")},
            provenance_column=None,
        )
        backend = SQLiteBackend()
        try:
            engine.attach_store(DeltaStore(BulkLoader(backend, ddl)))
            for kind, seed, fragment in program:
                step = _resolve(engine, kind, seed, fragment)
                if step is not None:
                    engine.apply(step)
            db_rows = _ordered(backend.query('SELECT * FROM "R"'))
            instance = engine.instances()["R"]
            engine_rows = _ordered(
                tuple(encode_row(instance.schema, row)) for row in instance.rows
            )
            assert db_rows == engine_rows
            # And the engine rows themselves equal a from-scratch shred of
            # the final text, so the database transitively matches a fresh
            # bulk load.
            serial = stream_evaluate_rule(rule, engine.text(), deduplicate=True)
            assert instance.rows == serial.rows
        finally:
            backend.close()
