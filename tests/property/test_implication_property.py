"""Soundness of key implication, checked against random conformant documents.

The implication engine may be conservative (answer "no" although the key is
implied) but must never be unsound: whenever it answers "yes" for a query
``φ`` against the paper's key set ``Σ``, every document satisfying ``Σ`` must
satisfy ``φ``.  Random documents over the book/chapter/section vocabulary
that satisfy ``Σ`` by construction serve as the test pool.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.paper_example import paper_keys
from repro.keys.implication import ImplicationEngine
from repro.keys.key import XMLKey
from repro.keys.satisfaction import satisfies, satisfies_all

from tests.property.strategies import paper_conformant_documents
import pytest

# Hypothesis suites run in their own CI job (see .github/workflows/ci.yml).
pytestmark = pytest.mark.slow


PAPER_KEYS = paper_keys()
ENGINE = ImplicationEngine(PAPER_KEYS)

CONTEXTS = [".", "//book", "//book/chapter", "//book/chapter/section", "r/book", "//book/author"]
TARGETS = [
    ".",
    "//book",
    "book",
    "chapter",
    "title",
    "name",
    "author",
    "author/contact",
    "contact",
    "section",
    "chapter/section",
    "chapter/name",
    "@isbn",
    "@number",
]
ATTRIBUTE_SETS = [(), ("isbn",), ("number",), ("isbn", "number"), ("missing",)]

common_settings = settings(
    max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def random_queries():
    return st.builds(
        XMLKey,
        st.sampled_from(CONTEXTS),
        st.sampled_from(TARGETS),
        st.sampled_from(ATTRIBUTE_SETS),
    )


class TestGeneratedDocumentsConform:
    @common_settings
    @given(paper_conformant_documents())
    def test_strategy_documents_satisfy_sigma(self, doc):
        assert satisfies_all(doc, PAPER_KEYS)


class TestImplicationSoundness:
    @common_settings
    @given(random_queries(), paper_conformant_documents())
    def test_implied_keys_hold_on_conformant_documents(self, query, doc):
        if ENGINE.implies(query):
            assert satisfies(doc, query), query.text

    @common_settings
    @given(random_queries())
    def test_implication_is_deterministic(self, query):
        assert ENGINE.implies(query) == ENGINE.implies(query)

    @common_settings
    @given(random_queries())
    def test_fresh_engine_agrees_with_cached_engine(self, query):
        assert ENGINE.implies(query) == ImplicationEngine(PAPER_KEYS).implies(query)


class TestExistSoundness:
    @common_settings
    @given(
        st.sampled_from(["//book", "//book/chapter", "//book/chapter/section", "//book/title"]),
        st.sampled_from([("isbn",), ("number",), ("isbn", "number"), ("other",)]),
        paper_conformant_documents(),
    )
    def test_exist_answers_hold_on_documents(self, path, attributes, doc):
        from repro.keys.implication import attributes_exist
        from repro.xmlmodel.paths import parse_path

        if attributes_exist(PAPER_KEYS, path, attributes):
            for node in parse_path(path).evaluate(doc.root):
                for attribute in attributes:
                    assert node.is_element() and node.attribute(attribute) is not None
