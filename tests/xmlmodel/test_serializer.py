"""Unit tests for the XML serializer."""

from repro.xmlmodel.builder import document, element, text
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serializer import serialize


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(element("r")) == "<r/>"

    def test_attributes_rendered(self):
        rendered = serialize(element("book", {"isbn": "123", "lang": "en"}))
        assert rendered == '<book isbn="123" lang="en"/>'

    def test_text_only_element_on_one_line(self):
        rendered = serialize(element("title", text("XML")))
        assert rendered == "<title>XML</title>"

    def test_nested_elements_indented(self):
        rendered = serialize(element("r", element("a", text("x"))))
        assert rendered.splitlines() == ["<r>", "  <a>x</a>", "</r>"]

    def test_compact_mode(self):
        rendered = serialize(element("r", element("a", text("x"))), indent=0)
        assert rendered == "<r><a>x</a></r>"

    def test_xml_declaration(self):
        rendered = serialize(element("r"), xml_declaration=True)
        assert rendered.startswith('<?xml version="1.0"')

    def test_special_characters_escaped_in_text(self):
        rendered = serialize(element("t", text("a < b & c > d")))
        assert "&lt;" in rendered and "&amp;" in rendered and "&gt;" in rendered

    def test_quotes_escaped_in_attributes(self):
        rendered = serialize(element("t", {"a": 'say "hi" & go'}))
        assert "&quot;" in rendered and "&amp;" in rendered

    def test_accepts_tree_or_element(self):
        tree = document(element("r", element("a")))
        assert serialize(tree) == serialize(tree.root)

    def test_round_trip_preserves_structure(self):
        original = element(
            "r",
            element("book", {"isbn": "1&2"}, element("title", text("A<B"))),
        )
        reparsed = parse_document(serialize(original))
        book = reparsed.root.child_elements("book")[0]
        assert book.attribute_value("isbn") == "1&2"
        assert book.child_elements("title")[0].text_content() == "A<B"
