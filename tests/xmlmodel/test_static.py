"""Unit tests for the static optimization plane (label graph, NFA
specialization, skip sets, plan compilation)."""

import pickle

import pytest

from repro.keys.key import parse_key
from repro.transform.rule import TableRule
from repro.xmlmodel.dtd import parse_dtd
from repro.xmlmodel.events import SKIP, iter_events
from repro.xmlmodel.matching import PathNFA
from repro.xmlmodel.paths import parse_path
from repro.xmlmodel.static import (
    OTHER_LABEL,
    LabelGraph,
    SkipSet,
    SpecializedNFA,
    StaticPlan,
    compile_plan,
)


BOOK_DTD = """
<!ELEMENT r (book*)>
<!ELEMENT book (title, chapter*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT chapter (title, section*)>
<!ELEMENT section (title)>
<!ATTLIST book isbn ID #REQUIRED>
<!ATTLIST chapter number CDATA #REQUIRED>
"""


@pytest.fixture()
def dtd():
    return parse_dtd(BOOK_DTD)


# ----------------------------------------------------------------------
# LabelGraph
# ----------------------------------------------------------------------
class TestLabelGraph:
    def test_children_are_declared_labels_only(self, dtd):
        graph = LabelGraph(dtd)
        assert graph.children("book") == frozenset({"title", "chapter"})
        assert graph.children("title") == frozenset()
        assert graph.children("undeclared") == frozenset()

    def test_reachable_is_strict_descendant_closure(self, dtd):
        graph = LabelGraph(dtd)
        assert graph.reachable("book") == frozenset({"title", "chapter", "section"})
        assert graph.reachable("section") == frozenset({"title"})
        assert "r" not in graph.reachable("r")

    def test_root_labels_pin_declared_root(self, dtd):
        graph = LabelGraph(dtd)
        assert graph.root_labels() == frozenset({"r"})

    def test_reachable_handles_cycles(self):
        graph = LabelGraph(parse_dtd("<!ELEMENT a (a|b)*>\n<!ELEMENT b EMPTY>"))
        assert graph.reachable("a") == frozenset({"a", "b"})


# ----------------------------------------------------------------------
# SpecializedNFA: full-table transitions must agree with the on-line
# automaton for every label, declared or not.
# ----------------------------------------------------------------------
PATHS = ["//chapter", "book/chapter", "//book//section", "r//title", "//chapter/@number"]
TAG_RUNS = [
    ["r", "book", "chapter"],
    ["r", "book", "title"],
    ["book", "book", "chapter", "section"],
    ["zzz", "book", "chapter"],  # undeclared label takes the other column
    ["r", "zzz", "zzz", "section"],
]


class TestSpecializedNFA:
    @pytest.mark.parametrize("path_text", PATHS)
    @pytest.mark.parametrize("run", TAG_RUNS, ids=["-".join(r) for r in TAG_RUNS])
    def test_agrees_with_base_automaton(self, dtd, path_text, run):
        path = parse_path(path_text)
        base = PathNFA(path)
        spec = SpecializedNFA(path, dtd)
        base_state, spec_state = base.initial, spec.initial
        assert spec_state == base_state
        for tag in run:
            base_state = base.advance(base_state, tag)
            spec_state = spec.advance(spec_state, tag)
            assert spec_state == base_state
            assert spec.accepts(spec_state) == base.matches(base_state)
            for name in ("number", "isbn", "nope"):
                assert (name in spec.attr_names(spec_state)) == base.matches_attribute(
                    base_state, name
                )

    def test_alphabet_covers_mentioned_and_declared(self, dtd):
        spec = SpecializedNFA(parse_path("//chapter"), dtd)
        assert set(spec.alphabet) == {"r", "book", "title", "chapter", "section"}
        assert OTHER_LABEL not in spec.alphabet

    def test_mismatch_state_is_dead(self, dtd):
        spec = SpecializedNFA(parse_path("section/book"), dtd)
        mismatch = spec.advance(spec.initial, "book")
        assert mismatch == frozenset()
        assert spec.dead(mismatch)
        assert not spec.dead(spec.initial)

    def test_descendant_paths_have_no_dead_states(self, dtd):
        spec = SpecializedNFA(parse_path("//chapter"), dtd)
        assert spec.dead_states == frozenset()

    def test_without_dtd_nothing_is_dead(self):
        spec = SpecializedNFA(parse_path("section/book"))
        # With no content models, any label may follow any other: the
        # mismatch state is still unable to accept, but the analysis only
        # declares states dead relative to a DTD's declared labels.
        assert spec.advance(spec.initial, "book") == frozenset()

    def test_attribute_acceptance_at_target(self, dtd):
        spec = SpecializedNFA(parse_path("//chapter/@number"), dtd)
        at_chapter = spec.advance(spec.initial, "chapter")
        assert spec.attr_names(at_chapter) == frozenset({"number"})
        assert spec.can_accept_attribute(at_chapter)
        assert not spec.can_accept_attribute(spec.initial) or spec.attr_names(
            spec.initial
        )


# ----------------------------------------------------------------------
# SkipSet
# ----------------------------------------------------------------------
class TestSkipSet:
    def test_disabled_is_falsy_and_attempts_nothing(self):
        skip = SkipSet.disabled()
        assert not skip
        assert not skip.skippable("anything")
        assert not skip.verifies("anything")

    def test_verifies_falls_back_to_other_verdict(self):
        skip = SkipSet({"a"}, {"a": True, "b": False}, other_safe=True)
        assert skip.verifies("a")
        assert not skip.verifies("b")
        assert skip.verifies("never-mentioned")
        assert SkipSet({"a"}, {"a": True}, other_safe=False).verifies("x") is False

    def test_pickles_across_process_boundaries(self):
        skip = SkipSet({"a", "b"}, {"a": True, "b": True, "c": False}, other_safe=True)
        clone = pickle.loads(pickle.dumps(skip))
        assert clone.attempt == skip.attempt
        assert clone.verdicts == skip.verdicts
        assert clone.other_safe == skip.other_safe


# ----------------------------------------------------------------------
# compile_plan
# ----------------------------------------------------------------------
class TestCompilePlan:
    def test_selective_key_yields_skippable_labels(self, dtd):
        plan = compile_plan(dtd, keys=[parse_key("(., (//chapter, {@number}))")])
        assert isinstance(plan, StaticPlan)
        # chapter is the target (unsafe); r and book contain chapters.
        assert plan.skipset.attempt == frozenset({"section", "title"})
        assert plan.skipset.other_safe  # undeclared labels never match //chapter
        assert not plan.skipset.skippable("chapter")
        assert not plan.skipset.skippable("r")
        assert not plan.skipset.skippable("book")

    def test_key_touching_everything_disables_skipping(self, dtd):
        plan = compile_plan(dtd, keys=[parse_key("(., (//title, {}))")])
        # title occurs under every element: nothing is skippable.
        assert plan.skipset.attempt == frozenset()
        assert not plan.skipset

    def test_element_capturing_rule_disables_skipping(self, dtd):
        rule = TableRule("T")
        rule.add_mapping("v", rule.root_variable, "//book")
        rule.add_field("f", "v")
        plan = compile_plan(dtd, rules=[rule])
        assert plan.skip_disabled_by_rules
        assert not plan.skipset

    def test_attribute_anchored_rule_keeps_skipping(self, dtd):
        rule = TableRule("T")
        rule.add_mapping("v", rule.root_variable, "//chapter/@number")
        rule.add_field("f", "v")
        plan = compile_plan(dtd, rules=[rule])
        assert not plan.skip_disabled_by_rules
        assert plan.skipset.skippable("section")

    def test_statically_dead_key_is_diagnosed(self, dtd):
        dead = parse_key("(., (//ghost, {@x}))")
        live = parse_key("(., (//book, {@isbn}))")
        plan = compile_plan(dtd, keys=[dead, live])
        assert dead in plan.dead_keys
        assert live in plan.live_keys
        assert dead not in plan.live_keys

    def test_describe_mentions_the_essentials(self, dtd):
        plan = compile_plan(dtd, keys=[parse_key("(., (//chapter, {@number}))")])
        report = plan.describe()
        assert "static plan" in report
        assert "skippable labels" in report
        assert "section" in report

    def test_empty_workload_compiles(self, dtd):
        plan = compile_plan(dtd)
        assert plan.keys == ()
        assert plan.rules == ()


# ----------------------------------------------------------------------
# The tokenizer-level contract: a SKIP event elides exactly the ids the
# full stream would have spent on the subtree, so downstream node ids in
# the pruned and unpruned streams coincide.
# ----------------------------------------------------------------------
DOC = (
    "<r><book isbn='1'><title>T</title>"
    "<chapter number='1'><title>C</title><section><title>S</title></section></chapter>"
    "</book></r>"
)


class TestBulkFastForward:
    """The C-level bulk accounting must be indistinguishable from the
    per-tag walk: same end position, same id count, or a punt that lets
    the walk decide.  Exercised by comparing the skip stream with the
    bulk path enabled against the same stream with it disabled."""

    DOCS = [
        DOC,
        # attribute-free regions (the simple-tag branch)
        "<r><book isbn='1'><title>T</title><chapter number='2'>"
        "<title>C</title><section><title> </title></section>"
        "<section><title></title></section></chapter></book></r>",
        # self-closing interior tags, single and double quotes
        '<r><book isbn="1"><title/><chapter number="n"><title/>'
        "<section><title>x</title></section></chapter></book></r>",
        # whitespace-only and mixed text runs
        "<r><book isbn='1'><title>  \n </title><chapter number='1'>"
        "<title>a b</title><section><title>\t</title></section></chapter></book></r>",
        # entities, comments, PIs and CDATA all punt to the walk
        "<r><book isbn='1'><title>a&amp;b</title></book></r>",
        "<r><book isbn='1'><title>a<!-- c -->b</title></book></r>",
        "<r><book isbn='1'><title><?pi d?>x</title></book></r>",
        "<r><book isbn='1'><title><![CDATA[ z ]]></title></book></r>",
        # a close tag whose name shares the skipped label as a prefix
        "<r><book isbn='1'><chapter number='1'><title>T</title>"
        "<section><titlex>y</titlex></section></chapter></book></r>",
        # attributes inside the skipped region (the validated-attr branch)
        "<r><book isbn='1'><chapter number='1'><title>T</title>"
        "<section><title a='1' b='2'>s</title></section></chapter></book></r>",
    ]

    def _streams(self, doc, dtd, monkeypatch):
        from repro.xmlmodel import events as events_module

        plan = compile_plan(dtd, keys=[parse_key("(., (//chapter, {@number}))")])
        with_bulk = list(iter_events(doc, skip=plan.skipset))
        monkeypatch.setattr(
            events_module, "_skip_bulk_region", lambda *args: None
        )
        walk_only = list(iter_events(doc, skip=plan.skipset))
        return with_bulk, walk_only

    @pytest.mark.parametrize("doc", DOCS)
    def test_bulk_and_walk_streams_identical(self, dtd, doc, monkeypatch):
        with_bulk, walk_only = self._streams(doc, dtd, monkeypatch)
        assert with_bulk == walk_only

    @pytest.mark.parametrize("doc", DOCS)
    def test_bulk_and_walk_agree_without_whitespace_stripping(
        self, dtd, doc, monkeypatch
    ):
        from repro.xmlmodel import events as events_module

        plan = compile_plan(dtd, keys=[parse_key("(., (//chapter, {@number}))")])
        with_bulk = list(iter_events(doc, strip_whitespace=False, skip=plan.skipset))
        monkeypatch.setattr(
            events_module, "_skip_bulk_region", lambda *args: None
        )
        walk_only = list(iter_events(doc, strip_whitespace=False, skip=plan.skipset))
        assert with_bulk == walk_only

    def test_duplicate_attribute_ids_match_the_scanner(self, dtd):
        # The scanner emits one attr event per occurrence, repeated names
        # included; the skip accounting (walk and bulk) must agree.
        doc = (
            "<r><book isbn='1'><chapter number='1'><title>T</title>"
            "<section><title a='1' a='2'>s</title></section></chapter></book></r>"
        )
        plan = compile_plan(dtd, keys=[parse_key("(., (//chapter, {@number}))")])
        pruned = list(iter_events(doc, skip=plan.skipset))
        full = list(iter_events(doc))
        spent_full = sum(1 for e in full if e.kind in ("start", "attr", "text"))
        spent_pruned = sum(
            e.value if e.kind == SKIP else 1
            for e in pruned
            if e.kind in ("start", "attr", "text", SKIP)
        )
        assert spent_pruned == spent_full

    def test_auto_engine_prefers_pure_scanner_under_skip(self, dtd, monkeypatch):
        # With a non-empty skip set on an in-memory string, auto must not
        # route through a C backend that visits every node.
        from repro.xmlmodel import accel

        plan = compile_plan(dtd, keys=[parse_key("(., (//chapter, {@number}))")])
        calls = []
        original = accel.accelerated_events

        def spying(source, strip_whitespace, resolved, skip=None):
            calls.append(resolved)
            return original(source, strip_whitespace, resolved, skip)

        monkeypatch.setattr(accel, "accelerated_events", spying)
        assert any(e.kind == SKIP for e in iter_events(DOC, skip=plan.skipset))
        assert calls == []  # the pure scanner handled it directly
        list(iter_events(DOC, engine="expat", skip=plan.skipset))
        assert calls == ["expat"]  # explicit requests are honored


class TestSkipEvents:
    def test_skip_elides_whole_subtrees(self, dtd):
        plan = compile_plan(dtd, keys=[parse_key("(., (//chapter, {@number}))")])
        events = list(iter_events(DOC, skip=plan.skipset))
        skips = [event for event in events if event.kind == SKIP]
        assert {event.name for event in skips} == {"title", "section"}
        assert all(isinstance(event.value, int) for event in skips)
        assert not any(
            event.kind != SKIP and event.name in {"section"} for event in events
        )

    def test_id_accounting_matches_full_stream(self, dtd):
        plan = compile_plan(dtd, keys=[parse_key("(., (//chapter, {@number}))")])
        full = list(iter_events(DOC))
        pruned = list(iter_events(DOC, skip=plan.skipset))
        # Ids spent: every element, every attribute occurrence, every
        # flushed text event.  The pruned stream must spend exactly as many.
        spent_full = sum(1 for e in full if e.kind in ("start", "attr", "text"))
        spent_pruned = sum(
            e.value if e.kind == SKIP else 1
            for e in pruned
            if e.kind in ("start", "attr", "text", SKIP)
        )
        assert spent_pruned == spent_full

    def test_unsafe_interior_tag_aborts_the_skip(self, dtd):
        # A document that violates the DTD: a chapter nested inside a
        # section.  The section looks skippable, but fast-forwarding must
        # abort when it sees the chapter, and the answer stays exact.
        doc = (
            "<r><book isbn='1'>"
            "<section><chapter number='9'><title>X</title></chapter></section>"
            "</book></r>"
        )
        plan = compile_plan(dtd, keys=[parse_key("(., (//chapter, {@number}))")])
        pruned = list(iter_events(doc, skip=plan.skipset))
        # The section attempt was aborted (its events are all present);
        # only the innocent title subtree inside the chapter was elided.
        assert {e.name for e in pruned if e.kind == SKIP} == {"title"}
        assert [e for e in pruned if e.name == "chapter" and e.kind == "start"]
        assert [e for e in pruned if e.name == "section" and e.kind == "start"]
        # And the pruned stream is the full stream minus that one subtree.
        full = [e for e in iter_events(doc) if e.name not in ("title", "#text")]
        skipless = [e for e in pruned if e.kind != SKIP]
        assert skipless == full
