"""Unit tests for the node classes of the XML tree model."""

import pytest

from repro.xmlmodel.nodes import AttributeNode, ElementNode, NodeKind, TextNode


class TestTextNode:
    def test_label_is_hash_text(self):
        assert TextNode("hello").label == "#text"

    def test_kind(self):
        assert TextNode("x").kind is NodeKind.TEXT

    def test_predicates(self):
        node = TextNode("x")
        assert node.is_text()
        assert not node.is_element()
        assert not node.is_attribute()

    def test_stores_text(self):
        assert TextNode("some data").text == "some data"


class TestAttributeNode:
    def test_label_has_at_prefix(self):
        assert AttributeNode("isbn", "123").label == "@isbn"

    def test_leading_at_is_stripped_from_name(self):
        node = AttributeNode("@isbn", "123")
        assert node.name == "isbn"
        assert node.label == "@isbn"

    def test_value(self):
        assert AttributeNode("number", "10").value == "10"

    def test_kind_predicates(self):
        node = AttributeNode("a", "1")
        assert node.is_attribute()
        assert not node.is_element()
        assert not node.is_text()


class TestElementNode:
    def test_label_is_tag(self):
        assert ElementNode("book").label == "book"

    def test_append_child_sets_parent(self):
        parent = ElementNode("book")
        child = ElementNode("title")
        parent.append_child(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_append_attribute_node_rejected(self):
        parent = ElementNode("book")
        with pytest.raises(TypeError):
            parent.append_child(AttributeNode("isbn", "1"))

    def test_set_attribute_creates_node(self):
        book = ElementNode("book")
        attr = book.set_attribute("isbn", "123")
        assert attr.parent is book
        assert book.attribute("isbn") is attr
        assert book.attribute("@isbn") is attr

    def test_set_attribute_replaces_existing(self):
        book = ElementNode("book")
        book.set_attribute("isbn", "123")
        book.set_attribute("isbn", "456")
        assert book.attribute_value("isbn") == "456"
        assert len(book.attributes) == 1

    def test_remove_attribute(self):
        book = ElementNode("book")
        book.set_attribute("isbn", "123")
        book.remove_attribute("@isbn")
        assert book.attribute("isbn") is None

    def test_attribute_value_missing_is_none(self):
        assert ElementNode("book").attribute_value("isbn") is None

    def test_child_elements_filter_by_tag(self):
        book = ElementNode("book")
        title = ElementNode("title")
        chapter1 = ElementNode("chapter")
        chapter2 = ElementNode("chapter")
        for child in (title, chapter1, chapter2):
            book.append_child(child)
        assert book.child_elements("chapter") == [chapter1, chapter2]
        assert book.child_elements() == [title, chapter1, chapter2]

    def test_child_elements_excludes_text(self):
        book = ElementNode("book")
        book.append_child(TextNode("xx"))
        assert book.child_elements() == []

    def test_text_content_concatenates_descendants(self):
        book = ElementNode("book")
        title = ElementNode("title")
        title.append_child(TextNode("XML "))
        title.append_child(TextNode("handbook"))
        book.append_child(title)
        assert book.text_content() == "XML handbook"

    def test_len_counts_children(self):
        book = ElementNode("book")
        book.append_child(ElementNode("title"))
        book.append_child(TextNode("x"))
        assert len(book) == 2


class TestTraversal:
    @pytest.fixture()
    def tree(self):
        root = ElementNode("r")
        book = ElementNode("book")
        book.set_attribute("isbn", "123")
        title = ElementNode("title")
        title.append_child(TextNode("XML"))
        book.append_child(title)
        chapter = ElementNode("chapter")
        chapter.set_attribute("number", "1")
        book.append_child(chapter)
        root.append_child(book)
        return root

    def test_preorder_without_attributes(self, tree):
        labels = [node.label for node in tree.iter_preorder()]
        assert labels == ["r", "book", "title", "#text", "chapter"]

    def test_preorder_with_attributes_visits_attrs_first(self, tree):
        labels = [node.label for node in tree.iter_preorder(include_attributes=True)]
        assert labels == ["r", "book", "@isbn", "title", "#text", "chapter", "@number"]

    def test_descendant_or_self_elements(self, tree):
        labels = [node.label for node in tree.iter_descendant_or_self_elements()]
        assert labels == ["r", "book", "title", "chapter"]

    def test_ancestors(self, tree):
        chapter = tree.child_elements("book")[0].child_elements("chapter")[0]
        assert [node.label for node in chapter.ancestors()] == ["book", "r"]

    def test_root(self, tree):
        chapter = tree.child_elements("book")[0].child_elements("chapter")[0]
        assert chapter.root() is tree

    def test_depth(self, tree):
        book = tree.child_elements("book")[0]
        chapter = book.child_elements("chapter")[0]
        assert tree.depth() == 0
        assert book.depth() == 1
        assert chapter.depth() == 2
