"""Unit tests for the PR-2 path-interning layer.

The implication oracle relies on paths being interned (equal values are the
same object, hashes precomputed) and on containment verdicts persisting
across calls; these tests pin the observable guarantees.
"""

from repro.xmlmodel.paths import (
    PathExpression,
    PathStep,
    StepKind,
    clear_containment_cache,
    concat,
    contains,
    naive_containment,
    parse_path,
)


class TestStepInterning:
    def test_equal_steps_are_identical(self):
        assert PathStep.label("book") is PathStep.label("book")
        assert PathStep.attribute("isbn") is PathStep.attribute("@isbn")
        assert PathStep.descendant() is PathStep.descendant()

    def test_distinct_steps_are_distinct(self):
        assert PathStep.label("book") is not PathStep.label("chapter")
        assert PathStep.label("x") is not PathStep.attribute("x")

    def test_invalid_steps_still_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            PathStep(StepKind.DESCENDANT, "named")
        with pytest.raises(ValueError):
            PathStep(StepKind.LABEL, None)

    def test_hash_matches_value_semantics(self):
        assert hash(PathStep.label("a")) == hash(PathStep.label("a"))


class TestExpressionInterning:
    def test_equal_expressions_are_identical(self):
        first = PathExpression([PathStep.label("a"), PathStep.descendant()])
        second = PathExpression([PathStep.label("a"), PathStep.descendant()])
        assert first is second

    def test_normalisation_interns_to_the_same_object(self):
        collapsed = PathExpression(
            [PathStep.descendant(), PathStep.descendant(), PathStep.label("a")]
        )
        single = PathExpression([PathStep.descendant(), PathStep.label("a")])
        assert collapsed is single

    def test_parse_is_cached_and_interned(self):
        assert parse_path("//book/chapter") is parse_path("//book/chapter")
        # Different spellings of the same expression intern to one object.
        assert parse_path("////book/chapter") is parse_path("//book/chapter")
        assert parse_path(".") is PathExpression.epsilon()

    def test_concat_interns(self):
        joined = concat(parse_path("//book"), parse_path("chapter"))
        assert joined is parse_path("//book/chapter")
        assert concat() is PathExpression.epsilon()
        assert concat(parse_path("a"), PathExpression.epsilon()) is parse_path("a")

    def test_truediv_uses_interned_concat(self):
        assert parse_path("a") / "b" is parse_path("a/b")


class TestCopyAndPickle:
    def test_pickle_reinterns(self):
        import pickle

        path = parse_path("a/b/@c")
        assert pickle.loads(pickle.dumps(path)) is path
        step = PathStep.label("book")
        assert pickle.loads(pickle.dumps(step)) is step

    def test_copy_and_deepcopy_preserve_identity(self):
        import copy

        path = parse_path("//book/chapter")
        assert copy.copy(path) is path
        assert copy.deepcopy(path) is path

    def test_deepcopy_of_containers_round_trips(self):
        import copy

        from repro.keys.key import parse_key

        key = parse_key("K2 = (//book, (chapter, {@number}))")
        clone = copy.deepcopy(key)
        assert clone == key and clone.context is key.context

    def test_pool_entries_are_reclaimed(self):
        import gc

        expressions = [parse_path(f"reclaim{i}/me{i}") for i in range(100)]
        grown = len(PathExpression._pool)
        del expressions
        parse_path.cache_clear()
        gc.collect()
        assert len(PathExpression._pool) < grown


class TestContainmentMemo:
    def test_repeated_verdicts_are_stable(self):
        covering = parse_path("//book//section")
        covered = parse_path("//book/chapter/section")
        assert contains(covering, covered)
        assert contains(covering, covered)
        clear_containment_cache()
        assert contains(covering, covered)

    def test_naive_mode_is_scoped(self):
        covering = parse_path("//a")
        covered = parse_path("a/b/a")
        fast = contains(covering, covered)
        with naive_containment():
            assert contains(covering, covered) == fast
        assert contains(covering, covered) == fast

    def test_naive_mode_restored_on_error(self):
        import repro.xmlmodel.paths as paths

        try:
            with naive_containment():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert paths._use_naive_containment is False
