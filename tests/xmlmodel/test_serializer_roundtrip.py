"""Serializer/tokenizer round-trips for escaping and special characters.

The serializer must escape exactly enough for its output to re-parse —
through the DOM parser *and* the event tokenizer — to the same values.
These are the dedicated edge cases (``<``, ``>``, ``&``, quotes, entity
look-alikes, mixed content) that the general round-trip fuzz of
``tests/property/test_roundtrip_property.py`` only hits by chance.
"""

import pytest

from repro.xmlmodel.builder import document, element, text
from repro.xmlmodel.events import ATTR, TEXT, iter_events
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serializer import serialize

SPECIAL_VALUES = [
    "<",
    ">",
    "&",
    '"',
    "'",
    "a<b&c>d",
    '"double" and \'single\'',
    "&amp;",  # a literal ampersand-entity text, must double-escape
    "&#65;",  # a literal character-reference text
    "]]>",
    "tag <open attr=\"x\">",
    "&unknown;",
]


def roundtrip(tree):
    return parse_document(serialize(tree, indent=0))


class TestAttributeEscaping:
    @pytest.mark.parametrize("value", SPECIAL_VALUES)
    def test_attribute_value_roundtrips_through_parser(self, value):
        tree = document(element("r", {"v": value}))
        reparsed = roundtrip(tree)
        assert reparsed.root.attribute_value("v") == value

    @pytest.mark.parametrize("value", SPECIAL_VALUES)
    def test_attribute_value_roundtrips_through_tokenizer(self, value):
        compact = serialize(document(element("r", {"v": value})), indent=0)
        attrs = [e for e in iter_events(compact) if e.kind == ATTR]
        assert attrs == [attrs[0]._replace(value=value)]

    def test_multiple_attributes_keep_order_and_values(self):
        tree = document(element("r", {"a": "1<2", "b": '"', "c": "&&"}))
        reparsed = roundtrip(tree)
        assert [
            (a.name, a.value) for a in reparsed.root.attributes.values()
        ] == [("a", "1<2"), ("b", '"'), ("c", "&&")]


class TestTextEscaping:
    @pytest.mark.parametrize("value", SPECIAL_VALUES)
    def test_text_roundtrips_through_parser(self, value):
        tree = document(element("r", text(value)))
        reparsed = roundtrip(tree)
        assert [c.text for c in reparsed.root.children if c.is_text()] == [value]

    @pytest.mark.parametrize("value", SPECIAL_VALUES)
    def test_text_roundtrips_through_tokenizer(self, value):
        compact = serialize(document(element("r", text(value))), indent=0)
        texts = [e.value for e in iter_events(compact, strip_whitespace=False) if e.kind == TEXT]
        assert texts == [value]

    def test_mixed_content_with_specials(self):
        tree = document(
            element(
                "r",
                text("a&b"),
                element("c", {"x": "<>&"}, text("<tag>")),
                text("d>e"),
            )
        )
        reparsed = roundtrip(tree)
        child = [c for c in reparsed.root.children if c.is_element()][0]
        assert child.attribute_value("x") == "<>&"
        assert [c.text for c in child.children] == ["<tag>"]


class TestSerializedFormStaysWellFormed:
    @pytest.mark.parametrize("value", SPECIAL_VALUES)
    def test_no_raw_specials_leak_into_markup(self, value):
        compact = serialize(
            document(element("r", {"v": value}, text(value))),
            indent=0,
        )
        # Between markup delimiters there must be no raw '<'; every '&'
        # must start a well-formed entity or character reference.
        body = compact[compact.index(">") + 1 : compact.rindex("<")]
        assert "<" not in body
        import re

        for match in re.finditer(r"&", body):
            assert re.match(r"&(amp|lt|gt|quot|apos|#\d+|#x[0-9a-fA-F]+);", body[match.start():]), body
