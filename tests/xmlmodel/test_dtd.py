"""Unit tests for the DTD subsystem (parsing, validation, key derivation)."""

import pytest

from repro.keys.satisfaction import satisfies
from repro.xmlmodel.builder import document, element, text
from repro.xmlmodel.dtd import (
    DTDSyntaxError,
    existence_facts,
    keys_from_dtd,
    parse_dtd,
)


BOOK_DTD = """
<!-- the book catalogue DTD of the running example -->
<!ELEMENT r (book*)>
<!ELEMENT book (author*, title, chapter*)>
<!ELEMENT author (name, contact?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT contact (#PCDATA)>
<!ELEMENT chapter (name, section*)>
<!ELEMENT section (name)>
<!ATTLIST book
          isbn ID #REQUIRED
          lang CDATA #IMPLIED
          format CDATA #FIXED "hardcover">
<!ATTLIST chapter number CDATA #REQUIRED>
<!ATTLIST section number CDATA #REQUIRED
                  ref IDREF #IMPLIED>
"""


@pytest.fixture()
def dtd():
    return parse_dtd(BOOK_DTD)


class TestParsing:
    def test_elements_parsed(self, dtd):
        assert set(dtd.elements) == {
            "r",
            "book",
            "author",
            "title",
            "name",
            "contact",
            "chapter",
            "section",
        }

    def test_root_defaults_to_first_declared_element(self, dtd):
        assert dtd.root_name == "r"

    def test_explicit_root_name(self):
        assert parse_dtd(BOOK_DTD, root_name="book").root_name == "book"

    def test_content_model_children(self, dtd):
        assert dtd.elements["book"].allowed_children() == {"author", "title", "chapter"}
        assert dtd.elements["title"].allowed_children() == set()
        assert dtd.elements["title"].allows_text

    def test_attlist_parsed(self, dtd):
        isbn = dtd.attributes[("book", "isbn")]
        assert isbn.attr_type == "ID"
        assert isbn.is_required and isbn.is_id
        lang = dtd.attributes[("book", "lang")]
        assert not lang.is_required
        fixed = dtd.attributes[("book", "format")]
        assert fixed.is_fixed and fixed.fixed_value == "hardcover"

    def test_attributes_of(self, dtd):
        assert {decl.name for decl in dtd.attributes_of("book")} == {"isbn", "lang", "format"}

    def test_required_attributes(self, dtd):
        names = {(decl.element, decl.name) for decl in dtd.required_attributes()}
        assert ("book", "isbn") in names
        assert ("chapter", "number") in names
        assert ("book", "lang") not in names

    def test_empty_and_any_content_models(self):
        dtd = parse_dtd("<!ELEMENT br EMPTY><!ELEMENT anything ANY>")
        assert dtd.elements["br"].is_empty
        assert dtd.elements["anything"].is_any
        assert dtd.elements["anything"].allows_text

    def test_garbage_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("this is not a dtd")


def valid_doc():
    return document(
        element(
            "r",
            element(
                "book",
                {"isbn": "b1", "format": "hardcover"},
                element("author", element("name", text("A"))),
                element("title", text("XML")),
                element(
                    "chapter",
                    {"number": "1"},
                    element("name", text("Intro")),
                    element("section", {"number": "1", "ref": "b1"}, element("name", text("s"))),
                ),
            ),
        )
    )


class TestValidation:
    def test_valid_document(self, dtd):
        assert dtd.is_valid(valid_doc())

    def test_wrong_root(self, dtd):
        doc = document(element("library", element("book", {"isbn": "b1"})))
        kinds = {v.kind for v in dtd.validate(doc)}
        assert "wrong-root" in kinds

    def test_undeclared_element(self, dtd):
        doc = document(element("r", element("magazine")))
        kinds = {v.kind for v in dtd.validate(doc)}
        assert "undeclared-element" in kinds
        assert "unexpected-child" in kinds

    def test_missing_required_attribute(self, dtd):
        doc = document(element("r", element("book", element("title", text("X")))))
        kinds = {v.kind for v in dtd.validate(doc)}
        assert "missing-required-attribute" in kinds

    def test_undeclared_attribute(self, dtd):
        doc = document(element("r", element("book", {"isbn": "b1", "publisher": "x"})))
        kinds = {v.kind for v in dtd.validate(doc)}
        assert "undeclared-attribute" in kinds

    def test_fixed_attribute_mismatch(self, dtd):
        doc = document(element("r", element("book", {"isbn": "b1", "format": "paperback"})))
        kinds = {v.kind for v in dtd.validate(doc)}
        assert "fixed-attribute-mismatch" in kinds

    def test_duplicate_id(self, dtd):
        doc = document(
            element("r", element("book", {"isbn": "same"}), element("book", {"isbn": "same"}))
        )
        kinds = {v.kind for v in dtd.validate(doc)}
        assert "duplicate-id" in kinds

    def test_dangling_idref(self, dtd):
        doc = document(
            element(
                "r",
                element(
                    "book",
                    {"isbn": "b1"},
                    element(
                        "chapter",
                        {"number": "1"},
                        element("name", text("n")),
                        element("section", {"number": "1", "ref": "nowhere"}, element("name", text("s"))),
                    ),
                ),
            )
        )
        kinds = {v.kind for v in dtd.validate(doc)}
        assert "dangling-idref" in kinds

    def test_unexpected_text(self, dtd):
        doc = document(element("r", "stray text", element("book", {"isbn": "b1"})))
        kinds = {v.kind for v in dtd.validate(doc)}
        assert "unexpected-text" in kinds

    def test_violation_str(self, dtd):
        doc = document(element("r", element("magazine")))
        assert any("magazine" in str(v) for v in dtd.validate(doc))


class TestConstraintExtraction:
    def test_id_attributes_become_absolute_keys(self, dtd):
        keys = keys_from_dtd(dtd)
        assert len(keys) == 1
        key = keys[0]
        assert key.is_absolute
        assert key.target.text == "//book"
        assert key.attributes == frozenset({"isbn"})

    def test_derived_keys_hold_on_valid_documents(self, dtd):
        # ID uniqueness is enforced by DTD validity, so the derived key must
        # be satisfied by every valid document.
        doc = valid_doc()
        assert dtd.is_valid(doc)
        for key in keys_from_dtd(dtd):
            assert satisfies(doc, key)

    def test_derived_keys_usable_for_propagation(self, dtd):
        from repro.core import check_propagation
        from repro.transform.dsl import parse_rule

        rule = parse_rule(
            """
            table book
              var b <- xr : //book
              var i <- b  : @isbn
              var t <- b  : title
              field isbn  = value(i)
              field title = value(t)
            """
        )
        keys = keys_from_dtd(dtd)
        # The DTD alone does not bound the number of <title> children, so the
        # FD needs the provider's at-most-one key in addition to the ID key.
        assert not check_propagation(keys, rule, "isbn -> title").holds
        from repro.keys.key import parse_key

        keys.append(parse_key("(//book, (title, {}))"))
        assert check_propagation(keys, rule, "isbn -> title").holds

    def test_existence_facts(self, dtd):
        facts = existence_facts(dtd)
        assert facts["book"] >= {"isbn", "format"}
        assert facts["chapter"] == {"number"}
        assert "author" not in facts


# ----------------------------------------------------------------------
# PR 9 pins: hostile / truncated declarations, declaration caches,
# and the streaming validator against the DOM validator.
# ----------------------------------------------------------------------
class TestParseErrorPinning:
    """parse_dtd's contract on malformed input: declarations the regex
    grammar cannot read are *ignored*; if nothing readable remains, the
    parse fails loudly with :class:`DTDSyntaxError`."""

    @pytest.mark.parametrize(
        "source",
        [
            "",
            "   \n\t  ",
            "<!ELEMENT",  # truncated mid-keyword
            "<!ELEMENT r ",  # truncated before the content model
            "random garbage, no markup at all",
            "<!ATTLIST a >",  # ATTLIST with no attribute definitions
            "<!ATTLIST a x CDATA>",  # attribute definition missing its default
            "<!-- <!ELEMENT x (y)> -->",  # declarations inside comments don't count
        ],
        ids=[
            "empty",
            "whitespace",
            "truncated-keyword",
            "truncated-model",
            "garbage",
            "empty-attlist",
            "attdef-no-default",
            "commented-out",
        ],
    )
    def test_unreadable_input_raises(self, source):
        with pytest.raises(DTDSyntaxError):
            parse_dtd(source)

    def test_truncated_content_model_keeps_readable_prefix(self):
        # "(a,>" is cut short at the first ">": the declaration parses and
        # the child-name extraction still sees the labels before the cut.
        parsed = parse_dtd("<!ELEMENT r (a,>")
        assert parsed.elements["r"].allowed_children() == frozenset({"a"})

    def test_duplicate_element_declaration_last_wins(self):
        parsed = parse_dtd("<!ELEMENT r (a)*>\n<!ELEMENT r EMPTY>")
        assert parsed.elements["r"].is_empty

    def test_doctype_wrapper_sets_root_name(self):
        parsed = parse_dtd("<!DOCTYPE r [ <!ELEMENT r (a)> ]>")
        assert parsed.root_name == "r"

    def test_hostile_attlist_defaults_normalized(self):
        parsed = parse_dtd(
            '<!ELEMENT a EMPTY>\n<!ATTLIST a x CDATA #FIXED\n\t  "v">'
        )
        decl = parsed.attributes[("a", "x")]
        assert decl.is_fixed
        assert decl.default == '#FIXED "v"'


class TestDeclarationCaches:
    def test_allowed_children_is_cached(self, dtd):
        decl = dtd.elements["book"]
        first = decl.allowed_children()
        assert decl.allowed_children() is first
        assert first == frozenset({"author", "title", "chapter"})

    def test_path_nfa_attribute_matching_is_memoised(self):
        from repro.xmlmodel.matching import PathNFA
        from repro.xmlmodel.paths import parse_path

        nfa = PathNFA(parse_path("//book/@isbn"))
        state = nfa.advance(nfa.initial, "book")
        assert nfa.matches_attribute(state, "isbn") is True
        assert nfa.matches_attribute(state, "lang") is False
        # Both verdicts — True and False — are memoised per (state, name).
        assert nfa._attr_matches[(state, "isbn")] is True
        assert nfa._attr_matches[(state, "lang")] is False
        # And the memo answers repeated probes without recomputation.
        assert nfa.matches_attribute(state, "isbn") is True
        assert nfa.matches_attribute(state, "lang") is False


class TestStreamingValidator:
    """Deterministic pins of validate-while-shredding; the property suite
    (tests/property/test_static_differential.py) fuzzes the same
    equivalence on random documents and DTDs."""

    def _doc(self):
        return (
            "<r><book isbn='x1' format='hardcover'>"
            "<author><name>A</name></author><title>T</title>"
            "<chapter number='1'><name>C</name></chapter>"
            "</book></r>"
        )

    def test_valid_document_streams_clean(self, dtd):
        from repro.xmlmodel.dtd import stream_dtd_violations

        assert stream_dtd_violations(self._doc(), dtd) == []

    def test_streaming_matches_dom_witness_for_witness(self, dtd):
        from repro.xmlmodel.dtd import stream_dtd_violations
        from repro.xmlmodel.parser import parse_document

        bad = (
            "<r><book isbn='d' format='paperback'><wat/>"
            "<chapter><name>C</name></chapter></book>"
            "<book isbn='d'><title>T</title></book></r>"
        )
        streamed = stream_dtd_violations(bad, dtd)
        dom = dtd.validate(parse_document(bad))
        assert [(v.kind, v.node_id, v.detail) for v in streamed] == [
            (v.kind, v.node_id, v.detail) for v in dom
        ]
        kinds = {v.kind for v in streamed}
        assert {
            "fixed-attribute-mismatch",
            "undeclared-element",
            "duplicate-id",
            "missing-required-attribute",
        } <= kinds

    def test_streaming_validator_works_per_event(self, dtd):
        from repro.xmlmodel.dtd import DTDStreamValidator
        from repro.xmlmodel.events import iter_events

        validator = DTDStreamValidator(dtd)
        for event in iter_events(self._doc()):
            validator.feed(event)
        assert validator.finish() == []
