"""Chunk-boundary pinning: the chunked tokenizer ≡ the in-memory scanner.

``iter_events`` takes a specialized single-buffer scanner for in-memory
strings and an incremental tokenizer for streams.  The chunked path must
produce the identical event stream no matter where the chunk boundaries
fall — including boundaries that tear a tag name, an attribute value, a
comment terminator, a CDATA marker, an entity reference or a processing
instruction in half.  These tests split adversarial documents at *every*
byte offset and at random multi-way cuts, in both whitespace modes, and
require event-for-event equality (ids, kinds, text segmentation,
attribute order).
"""

import pytest

from repro.xmlmodel.events import iter_events

# Each document concentrates one family of multi-byte markup whose
# recognition must survive an arbitrarily placed chunk boundary.
ADVERSARIAL_DOCUMENTS = {
    "comments": (
        "<?xml version='1.0'?><!-- lead --><r><!-- a - b -- inner --x-->"
        "<a>t<!----></a><!-- tail --></r><!-- epilogue -->"
    ),
    "cdata": (
        "<r><![CDATA[]]><a><![CDATA[ <not-a-tag> &amp; ]] ]]>post</a>"
        "<b>pre<![CDATA[x]]>mid<![CDATA[y]]></b></r>"
    ),
    "processing-instructions": (
        "<?xml version='1.0' encoding='utf-8'?><?style href='x.css'?>"
        "<r><?ping?><a><?target data with ?> inside</a></r><?done?>"
    ),
    "entities": (
        "<r a='&lt;&gt;&amp;&quot;&apos;'>&amp;text&lt;more&gt;"
        "<a>&#65;&#x42;mixed &amp;&#97;</a></r>"
    ),
    "doctype-and-attrs": (
        "<!DOCTYPE r [ <!ELEMENT r ANY> ]>"
        "<r one='a b' two=\"c&amp;d\"><e three='&#10;'/></r>"
    ),
    "dense-markup": (
        "<r><a x='1'/><b><c>t</c>u<d/></b>  <e>  </e>v</r>"
    ),
}


def _chunked(document, cut_points, strip):
    chunks = []
    previous = 0
    for cut in sorted(cut_points):
        chunks.append(document[previous:cut])
        previous = cut
    chunks.append(document[previous:])
    return list(iter_events(chunks, strip_whitespace=strip))


@pytest.mark.parametrize("name", sorted(ADVERSARIAL_DOCUMENTS))
@pytest.mark.parametrize("strip", [True, False], ids=["strip", "keep"])
def test_every_single_split_matches_in_memory(name, strip):
    document = ADVERSARIAL_DOCUMENTS[name]
    reference = list(iter_events(document, strip_whitespace=strip))
    assert reference, "adversarial document must produce events"
    for offset in range(len(document) + 1):
        chunked = _chunked(document, [offset], strip)
        assert chunked == reference, f"split at byte {offset} diverged"


@pytest.mark.parametrize("strip", [True, False], ids=["strip", "keep"])
def test_multi_way_splits_match_in_memory(strip):
    # One document mixing every marker family, cut at 3 moving offsets so
    # boundaries land inside different markers on each pass.
    document = (
        "<?xml version='1.0'?><!-- c --><r>"
        + "".join(
            f"<x n='{i}'><![CDATA[v{i}]]>&amp;<!-- {i} --><?p{i} d?></x>"
            for i in range(8)
        )
        + "</r>"
    )
    reference = list(iter_events(document, strip_whitespace=strip))
    for start in range(0, len(document), 7):
        cuts = [c for c in (start, start + 3, start + 11) if c <= len(document)]
        assert _chunked(document, cuts, strip) == reference


def test_one_byte_chunks_match_in_memory():
    for name, document in sorted(ADVERSARIAL_DOCUMENTS.items()):
        for strip in (True, False):
            reference = list(iter_events(document, strip_whitespace=strip))
            shredded = list(iter_events(iter(document), strip_whitespace=strip))
            assert shredded == reference, f"{name}: one-byte chunks diverged"


def test_file_like_source_uses_chunked_path():
    import io

    document = ADVERSARIAL_DOCUMENTS["cdata"]
    reference = list(iter_events(document))
    # A tiny chunk_size forces many refills through the file-like path.
    assert list(iter_events(io.StringIO(document), chunk_size=3)) == reference


def _timed_chunked_comment(payload_bytes, chunk_size=1 << 16):
    """Tokenize one huge comment fed in chunks; (best time, events)."""
    import time

    filler = "0123456789abcdef" * (payload_bytes // 16)
    document = f"<r><!--{filler}--><a>x</a></r>"
    best = float("inf")
    events = None
    for _ in range(3):
        chunks = (
            document[i : i + chunk_size]
            for i in range(0, len(document), chunk_size)
        )
        begin = time.perf_counter()
        events = list(iter_events(chunks))
        best = min(best, time.perf_counter() - begin)
    return best, events


def test_multi_megabyte_comment_chunked_is_not_quadratic():
    # A marker spanning many chunk refills must not rescan the pending
    # buffer from its start on every refill: 4x the input must cost ~4x,
    # not ~16x.  (The events are identical — the comment is skipped.)
    small_time, small_events = _timed_chunked_comment(2 * 1024 * 1024)
    large_time, large_events = _timed_chunked_comment(8 * 1024 * 1024)
    assert small_events == large_events
    ratio = large_time / small_time
    assert ratio < 10.0, (
        f"chunked tokenization scaled {ratio:.1f}x for 4x the input "
        f"({small_time * 1000:.0f} ms -> {large_time * 1000:.0f} ms): "
        "quadratic rescanning has regressed"
    )
