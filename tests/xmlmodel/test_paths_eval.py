"""Unit tests for path-expression evaluation (``n[[P]]``) over documents."""

import pytest

from repro.xmlmodel.builder import document, element, text
from repro.xmlmodel.paths import parse_path


@pytest.fixture()
def tree():
    """A compact version of the Figure 1 document."""
    return document(
        element(
            "r",
            element(
                "book",
                {"isbn": "123"},
                element("title", text("XML")),
                element(
                    "chapter",
                    {"number": "1"},
                    element("name", text("Introduction")),
                    element("section", {"number": "1"}, element("name", text("Fundamentals"))),
                    element("section", {"number": "2"}, element("name", text("Attributes"))),
                ),
                element("chapter", {"number": "10"}, element("name", text("Conclusion"))),
            ),
            element(
                "book",
                {"isbn": "234"},
                element("title", text("XML")),
                element("chapter", {"number": "1"}, element("name", text("Getting Acquainted"))),
            ),
        )
    )


def labels(nodes):
    return [node.label for node in nodes]


class TestEvaluation:
    def test_epsilon_returns_the_node_itself(self, tree):
        assert parse_path("").evaluate(tree.root) == [tree.root]

    def test_child_step(self, tree):
        assert labels(parse_path("book").evaluate(tree.root)) == ["book", "book"]

    def test_child_step_no_match(self, tree):
        assert parse_path("magazine").evaluate(tree.root) == []

    def test_child_chain(self, tree):
        names = parse_path("book/chapter/name").evaluate(tree.root)
        assert [n.text_content() for n in names] == [
            "Introduction",
            "Conclusion",
            "Getting Acquainted",
        ]

    def test_descendant_or_self_includes_self(self, tree):
        book = tree.root.child_elements("book")[0]
        result = parse_path("//").evaluate(book)
        assert result[0] is book
        assert all(node.is_element() for node in result)

    def test_descendant_label(self, tree):
        # Example 2.2: [[//@number]] has five members in Figure 1.
        numbers = parse_path("//@number").evaluate(tree.root)
        assert len(numbers) == 5
        assert all(node.is_attribute() for node in numbers)

    def test_descendant_element(self, tree):
        assert len(parse_path("//section").evaluate(tree.root)) == 2

    def test_descendant_then_child(self, tree):
        chapters = parse_path("//book/chapter").evaluate(tree.root)
        assert len(chapters) == 3

    def test_attribute_step(self, tree):
        book = tree.root.child_elements("book")[0]
        isbn = parse_path("@isbn").evaluate(book)
        assert len(isbn) == 1
        assert isbn[0].value == "123"

    def test_attribute_step_missing(self, tree):
        assert parse_path("@missing").evaluate(tree.root) == []

    def test_attribute_has_no_children(self, tree):
        assert parse_path("@isbn/name").evaluate(tree.root.child_elements("book")[0]) == []

    def test_descendant_does_not_traverse_into_attributes(self, tree):
        # '//name' must not return attribute nodes even though sections have
        # @number attributes — only the <name> elements.
        names = parse_path("//name").evaluate(tree.root)
        assert all(node.is_element() for node in names)
        assert len(names) == 5

    def test_relative_evaluation_from_inner_node(self, tree):
        book = tree.root.child_elements("book")[0]
        sections = parse_path("chapter/section").evaluate(book)
        assert len(sections) == 2

    def test_no_duplicates_with_overlapping_descendants(self, tree):
        # '//book//name' could reach the same node through several descendant
        # bindings; the result must still be duplicate-free.
        names = parse_path("//book//name").evaluate(tree.root)
        assert len(names) == len({id(n) for n in names}) == 5

    def test_document_order_preserved(self, tree):
        chapters = parse_path("//chapter").evaluate(tree.root)
        numbers = [c.attribute_value("number") for c in chapters]
        assert numbers == ["1", "10", "1"]

    def test_matches_concrete_path(self):
        assert parse_path("//book/chapter").matches(["book", "chapter"])
        assert parse_path("//book/chapter").matches(["lib", "shelf", "book", "chapter"])
        assert not parse_path("//book/chapter").matches(["book"])
        assert parse_path("//").matches([])
        assert parse_path("book/@isbn").matches(["book", "@isbn"])
