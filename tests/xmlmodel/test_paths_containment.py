"""Unit tests for path-expression containment (the oracle behind implication)."""

import pytest

from repro.xmlmodel.paths import contains, parse_path


def contained(sub, sup):
    """L(sub) ⊆ L(sup)."""
    return contains(parse_path(sup), parse_path(sub))


class TestReflexivityAndEpsilon:
    @pytest.mark.parametrize("path", ["", "a", "a/b", "//a", "a//b", "//", "//a/b/@c"])
    def test_every_expression_contains_itself(self, path):
        assert contained(path, path)

    def test_epsilon_in_descendant(self):
        assert contained("", "//")

    def test_epsilon_not_in_label(self):
        assert not contained("", "a")

    def test_label_not_in_epsilon(self):
        assert not contained("a", "")


class TestChildOnlyPaths:
    def test_equal_simple_paths(self):
        assert contained("a/b/c", "a/b/c")

    def test_different_labels(self):
        assert not contained("a/b", "a/c")

    def test_different_lengths(self):
        assert not contained("a/b", "a/b/c")
        assert not contained("a/b/c", "a/b")


class TestDescendantCovering:
    def test_descendant_covers_any_element_path(self):
        assert contained("a", "//")
        assert contained("a/b/c", "//")

    def test_descendant_prefix_covers_longer_concrete_prefix(self):
        assert contained("lib/shelf/book", "//book")
        assert contained("book", "//book")

    def test_descendant_does_not_cover_wrong_tail(self):
        assert not contained("book/chapter", "//book")

    def test_inner_descendant(self):
        assert contained("a/x/y/b", "a//b")
        assert contained("a/b", "a//b")
        assert not contained("a/b/c", "a//c/d")

    def test_descendant_covers_empty_segment(self):
        assert contained("a/b", "a//b")
        assert contained("//book/chapter", "//book//chapter")

    def test_multiple_descendants(self):
        assert contained("a/x/b/y/c", "//a//b//c")
        assert not contained("a/c/b", "//a//b//c")


class TestDescendantOnTheLeft:
    def test_descendant_only_contained_in_descendant(self):
        assert contained("//", "//")
        assert not contained("//", "a")
        assert not contained("//", "a//")

    def test_descendant_suffix(self):
        assert contained("//a", "//")
        assert contained("a//", "//")
        assert contained("a//b", "//b")
        assert contained("a//b", "a//b")
        assert not contained("a//b", "a/b")

    def test_longer_covering_prefix_fails(self):
        # //book ⊄ //book/chapter (a path ending at a book is not a chapter path)
        assert not contained("//book", "//book/chapter")

    def test_context_target_compositions(self):
        # The compositions used by the implication engine.
        assert contained("//book/chapter", "//book/chapter")
        assert contained("//book/chapter/section", "//book//section")
        assert contained("//book/chapter/section", "//section")
        assert not contained("//book/section", "//book/chapter/section")


class TestAttributesAndDescendants:
    def test_attribute_step_exact_match(self):
        assert contained("book/@isbn", "book/@isbn")
        assert not contained("book/@isbn", "book/@issn")

    def test_descendant_does_not_absorb_attribute_step(self):
        # '//' ranges over element paths only, so it cannot swallow '@isbn'.
        assert not contained("book/@isbn", "//")
        assert contained("book/@isbn", "//@isbn")
        assert contained("lib/book/@isbn", "//book/@isbn")

    def test_attribute_in_the_middle_is_not_matched_by_descendant(self):
        assert not contained("a/@x/b", "//b")


class TestMutualContainmentAsEquivalence:
    @pytest.mark.parametrize(
        "first,second",
        [
            ("a////b", "a//b"),
            ("//a//", "//a//"),
        ],
    )
    def test_equivalent_expressions(self, first, second):
        assert contained(first, second) and contained(second, first)

    @pytest.mark.parametrize(
        "first,second",
        [
            ("a//b", "a/b"),     # strict: right is a subset of left
            ("//book", "book"),
        ],
    )
    def test_strict_containment_one_direction_only(self, first, second):
        assert contained(second, first)
        assert not contained(first, second)
