"""Unit tests for the event-driven tokenizer (the streaming front end)."""

import io

import pytest

from repro.xmlmodel.events import (
    ATTR,
    END,
    START,
    TEXT,
    Event,
    as_events,
    element_from_events,
    iter_events,
    iter_tree_events,
    tree_from_events,
)
from repro.xmlmodel.parser import XMLSyntaxError, parse_document
from repro.xmlmodel.serializer import serialize


def chunked(text, size):
    return iter(text[i : i + size] for i in range(0, len(text), size))


def kinds(events):
    return [event.kind for event in events]


class TestEventStream:
    def test_simple_element(self):
        events = list(iter_events('<a x="1">hi</a>'))
        assert events == [
            Event(START, "a"),
            Event(ATTR, "x", "1"),
            Event(TEXT, "#text", "hi"),
            Event(END, "a"),
        ]

    def test_self_closing_element(self):
        assert list(iter_events("<a/>")) == [Event(START, "a"), Event(END, "a")]

    def test_attribute_order_is_document_order(self):
        events = list(iter_events('<a b="2" a="1" c="3"/>'))
        assert [e.name for e in events if e.kind == ATTR] == ["b", "a", "c"]

    def test_whitespace_only_text_dropped_by_default(self):
        assert kinds(iter_events("<a> <b/> </a>")) == [START, START, END, END]

    def test_whitespace_kept_when_not_stripping(self):
        events = list(iter_events("<a> <b/></a>", strip_whitespace=False))
        assert events[1] == Event(TEXT, "#text", " ")

    def test_cdata_merges_with_surrounding_text(self):
        events = list(iter_events("<a>x<![CDATA[<&>]]>y</a>"))
        assert events[1] == Event(TEXT, "#text", "x<&>y")

    def test_comment_splits_text(self):
        events = list(iter_events("<a>x<!--c-->y</a>"))
        assert [e.value for e in events if e.kind == TEXT] == ["x", "y"]

    def test_entities_expanded(self):
        events = list(iter_events('<a v="&lt;&amp;&#65;">&gt;&#x41;</a>'))
        assert events[1].value == "<&A"
        assert events[2].value == ">A"

    def test_prolog_doctype_and_trailing_misc_skipped(self):
        text = (
            '<?xml version="1.0"?><!DOCTYPE r [<!ELEMENT r ANY>]>'
            "<!--pre--><r/><!--post--> "
        )
        assert kinds(iter_events(text)) == [START, END]


class TestChunkedInput:
    @pytest.mark.parametrize("size", [1, 2, 3, 7, 64])
    def test_chunked_equals_string(self, size):
        text = '<?xml version="1.0"?><r a="1&amp;2"><b>t<!--c-->u</b><![CDATA[]]><c/></r>'
        assert list(iter_events(chunked(text, size))) == list(iter_events(text))

    def test_file_like_input(self):
        text = '<r x="1"><b>text</b></r>'
        assert list(iter_events(io.StringIO(text))) == list(iter_events(text))

    def test_marker_spanning_chunk_boundary(self):
        text = "<a><!--" + "x" * 10 + "--><b/></a>"
        for size in (1, 5, 9):
            assert kinds(iter_events(chunked(text, size))) == [START, START, END, END]

    @pytest.mark.parametrize("size", [1, 7])
    def test_chunked_errors_match_string_errors(self, size):
        for text in ["<a><b></a>", "<a", "<a>text", "junk", "<a/><b/>"]:
            with pytest.raises(XMLSyntaxError) as string_error:
                list(iter_events(text))
            with pytest.raises(XMLSyntaxError) as chunked_error:
                list(iter_events(chunked(text, size)))
            assert str(string_error.value) == str(chunked_error.value)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "<a><b></a>",
            "<a",
            "<a>text",
            "<a><!--oops</a>",
            "junk",
            "<a/><b/>",
            "<a foo=bar/>",
            '<a foo="1/>',
            "<a></ >",
            "<>",
        ],
    )
    def test_errors_match_dom_parser(self, text):
        with pytest.raises(XMLSyntaxError) as dom_error:
            parse_document(text)
        with pytest.raises(XMLSyntaxError) as stream_error:
            list(iter_events(text))
        assert str(stream_error.value) == str(dom_error.value)


class TestTreeBridge:
    def test_tree_from_events_matches_dom_parse(self, figure1):
        text = serialize(figure1, xml_declaration=True)
        via_events = tree_from_events(iter_events(text))
        via_dom = parse_document(text)
        assert serialize(via_events) == serialize(via_dom)
        assert [(n.node_id, n.label) for n in via_events.iter_nodes()] == [
            (n.node_id, n.label) for n in via_dom.iter_nodes()
        ]

    def test_iter_tree_events_round_trip(self, figure1):
        rebuilt = tree_from_events(iter_tree_events(figure1))
        assert serialize(rebuilt) == serialize(figure1)

    def test_incomplete_stream_rejected(self):
        with pytest.raises(ValueError):
            element_from_events([Event(START, "a")])

    def test_second_root_rejected(self):
        with pytest.raises(ValueError):
            element_from_events(
                [Event(START, "a"), Event(END, "a"), Event(START, "b"), Event(END, "b")]
            )


class TestAsEvents:
    def test_accepts_tree_string_chunks_and_events(self, figure1):
        text = serialize(figure1)
        reference = list(iter_events(text))
        assert list(as_events(figure1)) == list(iter_tree_events(figure1))
        assert list(as_events(text)) == reference
        assert list(as_events(chunked(text, 16))) == reference
        assert list(as_events(iter(reference))) == reference

    def test_empty_iterable(self):
        assert list(as_events(iter([]))) == []
