"""PR-7 accelerated tokenizer front-end: resolution, parity, fallback.

The accelerated plane (:mod:`repro.xmlmodel.accel`) must be *invisible*:
same events, same errors, same positions as the pure tokenizer, for every
source kind it accepts.  These tests pin

* engine resolution (kwarg > ``REPRO_TOKENIZER`` > ``auto``, unknown
  names, unavailable backends);
* event-for-event parity on the adversarial corpus in both whitespace
  modes;
* error parity (exception type, message, position) on malformed inputs;
* the capability probe: documents expat would silently normalize
  (BOM, carriage returns, tabs/newlines in attribute values) fall back
  to the pure tokenizer rather than diverge;
* mid-stream failure: events already emitted are not re-emitted when the
  replay fallback takes over;
* source plumbing: str, bytes, bytearray, memoryview, mmap, paths
  (including empty files), file-likes and chunk iterables;
* the segmented parse loop (tiny ``_SEGMENT``) and the ``auto``
  small-input heuristic.
"""

import io
import mmap

import pytest

from test_chunk_boundaries import ADVERSARIAL_DOCUMENTS

from repro.xmlmodel import accel
from repro.xmlmodel.accel import (
    ENGINE_ENV,
    TokenizerUnavailable,
    available_backends,
    fragment_byte_events,
    resolve_engine,
)
from repro.xmlmodel.events import iter_events
from repro.xmlmodel.parser import XMLSyntaxError
from repro.xmlmodel.shards import fragment_events

HAS_LXML = accel._lxml_module() is not None

MALFORMED_DOCUMENTS = {
    "mismatched-close": "<a><b></a>",
    "undefined-entity-eof": "<a>&bogus text",
    "space-after-lt": "<a>< b/></a>",
    "unterminated-cdata": "<a><![CDATA[oops</a>",
    "unquoted-attribute": "<a attr=novalue/>",
    "unterminated-comment": "<a><!-- never closed",
    "two-roots": "<a></a><b></b>",
    "no-markup": "text only",
    "empty": "",
}

#: Constructs expat normalizes away from the pure dialect — the probe
#: must route all of these to the pure tokenizer.
PROBE_DOCUMENTS = {
    "carriage-returns": "<a>line1\r\nline2</a>",
    "bare-carriage-return": "<a>one\rtwo</a>",
    "byte-order-mark": "\ufeff<a>x</a>",
    "tab-in-double-quoted-attr": '<a k="v\tw">x</a>',
    "newline-in-single-quoted-attr": "<a k='v\nw'>y</a>",
}


def outcome(source, strip=True, engine=None):
    """Events, or the error signature — comparable across engines."""
    try:
        return ("events", list(
            iter_events(source, strip_whitespace=strip, engine=engine)
        ))
    except XMLSyntaxError as error:
        return ("error", type(error).__name__, str(error), error.position)


def prefix_and_error(source, engine):
    """Consume until a raise: (events so far, error signature or None)."""
    events = []
    try:
        for event in iter_events(source, engine=engine):
            events.append(event)
    except XMLSyntaxError as error:
        return events, (type(error).__name__, str(error), error.position)
    return events, None


# ----------------------------------------------------------------------
# Engine resolution
# ----------------------------------------------------------------------
class TestEngineResolution:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine() == "auto"

    def test_environment_variable_selects(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "pure")
        assert resolve_engine() == "pure"

    def test_kwarg_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "pure")
        assert resolve_engine("expat") == "expat"

    def test_names_are_case_and_space_insensitive(self):
        assert resolve_engine("  EXPAT ") == "expat"

    def test_accel_resolves_to_installed_backend(self):
        assert resolve_engine("accel") in ("expat", "lxml")

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown tokenizer engine"):
            resolve_engine("bogus")

    def test_unknown_env_value_raises_from_iter_events(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "bogus")
        with pytest.raises(ValueError, match="unknown tokenizer engine"):
            iter_events("<a/>")

    @pytest.mark.skipif(HAS_LXML, reason="lxml is installed here")
    def test_missing_lxml_raises_unavailable(self):
        with pytest.raises(TokenizerUnavailable, match="lxml"):
            resolve_engine("lxml")

    def test_unavailable_is_a_value_error(self):
        assert issubclass(TokenizerUnavailable, ValueError)

    def test_available_backends_end_with_pure(self):
        backends = available_backends()
        assert backends[-1] == "pure"
        assert "expat" in backends


# ----------------------------------------------------------------------
# Event parity on the adversarial corpus
# ----------------------------------------------------------------------
class TestEventParity:
    @pytest.mark.parametrize("strip", [True, False], ids=["strip", "keep"])
    @pytest.mark.parametrize("name", sorted(ADVERSARIAL_DOCUMENTS))
    def test_adversarial_corpus(self, name, strip):
        document = ADVERSARIAL_DOCUMENTS[name]
        assert outcome(document, strip, "expat") == outcome(document, strip, "pure")

    def test_accel_equals_pure(self):
        document = ADVERSARIAL_DOCUMENTS["entities"]
        assert outcome(document, engine="accel") == outcome(document, engine="pure")

    def test_node_id_positions_match(self):
        # Node ids are positional in this dialect: equality of full event
        # streams on a document with repeated tags pins the numbering.
        document = "<r><a>1</a><a>2</a><b c='d'/><a>3</a></r>"
        assert outcome(document, engine="expat") == outcome(document, engine="pure")


# ----------------------------------------------------------------------
# Error parity on malformed inputs
# ----------------------------------------------------------------------
class TestErrorParity:
    @pytest.mark.parametrize("strip", [True, False], ids=["strip", "keep"])
    @pytest.mark.parametrize("name", sorted(MALFORMED_DOCUMENTS))
    def test_same_error_type_message_position(self, name, strip):
        document = MALFORMED_DOCUMENTS[name]
        pure = outcome(document, strip, "pure")
        assert pure[0] == "error", "corpus document must be malformed"
        assert outcome(document, strip, "expat") == pure

    def test_midstream_failure_does_not_replay_emitted_events(self):
        document = "<r>" + "".join(f"<x>{i}</x>" for i in range(50)) + "<bad"
        pure_events, pure_error = prefix_and_error(document, "pure")
        accel_events, accel_error = prefix_and_error(document, "expat")
        assert pure_error is not None
        assert accel_error == pure_error
        assert accel_events == pure_events


# ----------------------------------------------------------------------
# The capability probe
# ----------------------------------------------------------------------
class TestCapabilityProbe:
    @pytest.mark.parametrize("name", sorted(PROBE_DOCUMENTS))
    def test_probed_documents_match_pure(self, name):
        document = PROBE_DOCUMENTS[name]
        for strip in (True, False):
            assert outcome(document, strip, "expat") == outcome(
                document, strip, "pure"
            )

    @pytest.mark.parametrize("name", sorted(PROBE_DOCUMENTS))
    def test_probe_detects_divergent_constructs(self, name):
        assert accel._diverges(PROBE_DOCUMENTS[name])
        assert accel._diverges(PROBE_DOCUMENTS[name].encode("utf-8"))

    def test_probe_accepts_benign_whitespace(self):
        # Tabs and newlines in *text* do not trip the probe — only inside
        # attribute values does expat normalize them.
        document = "<a>tab\there\nand a line</a>"
        assert not accel._diverges(document)
        assert not accel._diverges(document.encode("utf-8"))


# ----------------------------------------------------------------------
# Source plumbing
# ----------------------------------------------------------------------
class TestSources:
    REFERENCE = ADVERSARIAL_DOCUMENTS["comments"]

    def test_buffer_sources_match_text(self):
        raw = self.REFERENCE.encode("utf-8")
        expected = outcome(self.REFERENCE, engine="pure")
        for source in (raw, bytearray(raw), memoryview(raw)):
            assert outcome(source, engine="expat") == expected

    def test_path_source_uses_mmap(self, tmp_path):
        target = tmp_path / "doc.xml"
        target.write_text(self.REFERENCE, encoding="utf-8")
        assert outcome(target, engine="expat") == outcome(
            self.REFERENCE, engine="pure"
        )

    def test_mmap_source_directly(self, tmp_path):
        target = tmp_path / "doc.xml"
        target.write_text(self.REFERENCE, encoding="utf-8")
        with open(target, "rb") as handle:
            with mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ) as mapped:
                assert outcome(mapped, engine="expat") == outcome(
                    self.REFERENCE, engine="pure"
                )

    def test_empty_file_matches_pure_error(self, tmp_path):
        # Zero-length files cannot be mmap-ed; the fallback read must
        # still produce the pure tokenizer's error.
        target = tmp_path / "empty.xml"
        target.write_bytes(b"")
        assert outcome(target, engine="expat") == outcome("", engine="pure")

    def test_file_like_and_chunk_iterable(self):
        expected = outcome(self.REFERENCE, engine="pure")
        assert outcome(io.StringIO(self.REFERENCE), engine="expat") == expected
        chunks = [self.REFERENCE[i : i + 5] for i in range(0, len(self.REFERENCE), 5)]
        assert outcome(iter(chunks), engine="expat") == expected

    def test_abandoned_stream_releases_the_file(self, tmp_path):
        target = tmp_path / "doc.xml"
        target.write_text("<r>" + "<a>x</a>" * 200 + "</r>", encoding="ascii")
        stream = iter_events(target, engine="expat")
        next(stream)
        del stream  # CPython refcounting must close the map and handle
        # The file stays usable (re-tokenized) after the abandoned stream.
        assert outcome(target, engine="expat")[0] == "events"


# ----------------------------------------------------------------------
# Segmentation and the auto heuristic
# ----------------------------------------------------------------------
class TestSegmentsAndAuto:
    @pytest.mark.parametrize("segment", [1, 7, 64])
    def test_tiny_segments_match(self, monkeypatch, segment):
        monkeypatch.setattr(accel, "_SEGMENT", segment)
        for name in ("cdata", "entities"):
            document = ADVERSARIAL_DOCUMENTS[name]
            assert outcome(document, engine="expat") == outcome(
                document, engine="pure"
            )

    def test_auto_declines_small_strings(self):
        assert accel.accelerated_events("<a/>", True, "auto") is None

    def test_auto_accepts_large_strings(self, monkeypatch):
        monkeypatch.setattr(accel, "_AUTO_THRESHOLD", 0)
        stream = accel.accelerated_events("<a>x</a>", True, "auto")
        assert stream is not None
        assert list(stream) == list(iter_events("<a>x</a>", engine="pure"))

    def test_auto_declines_file_likes(self):
        # Buffering would break the bounded-memory contract of streams.
        assert accel.accelerated_events(io.StringIO("<a/>"), True, "auto") is None

    def test_explicit_backend_accepts_file_likes(self):
        stream = accel.accelerated_events(io.StringIO("<a>x</a>"), True, "expat")
        assert list(stream) == list(iter_events("<a>x</a>", engine="pure"))


# ----------------------------------------------------------------------
# Zero-copy shard fragments
# ----------------------------------------------------------------------
class TestFragmentByteEvents:
    FRAGMENT = "<a n='1'>first</a><a n='2'><b/>second</a>"

    def test_matches_string_fragment_events(self):
        raw = memoryview(self.FRAGMENT.encode("utf-8"))
        expected = list(fragment_events("r", self.FRAGMENT, engine="pure"))
        assert list(fragment_byte_events("r", raw, engine="expat")) == expected

    def test_divergent_fragment_falls_back(self):
        fragment = "<a>one\rtwo</a>"
        raw = memoryview(fragment.encode("utf-8"))
        expected = list(fragment_events("r", fragment, engine="pure"))
        assert list(fragment_byte_events("r", raw, engine="expat")) == expected

    def test_pure_engine_accepts_bytes(self):
        raw = self.FRAGMENT.encode("utf-8")
        expected = list(fragment_events("r", self.FRAGMENT, engine="pure"))
        assert list(fragment_byte_events("r", raw, engine="pure")) == expected
