"""Unit tests for the document splitter (:mod:`repro.xmlmodel.shards`)."""

import pytest

from repro.xmlmodel.events import Event, END, iter_events
from repro.xmlmodel.shards import split_document


def replay(shards, strip_whitespace=True):
    return list(shards.replay_events(strip_whitespace=strip_whitespace))


def serial(text, strip_whitespace=True):
    return list(iter_events(text, strip_whitespace=strip_whitespace))


class TestSplitting:
    def test_basic_split_covers_all_children(self):
        text = "<r><a>1</a><b x='2'>2</b><c>3</c><d>4</d></r>"
        shards = split_document(text, 2)
        assert shards is not None
        assert len(shards) == 2
        assert sum(piece.subtrees for piece in shards.slices) == 4
        assert replay(shards) == serial(text)

    def test_more_shards_than_children_caps_at_children(self):
        text = "<r><a/><b/></r>"
        shards = split_document(text, 8)
        assert shards is not None
        assert len(shards) == 2
        assert [piece.subtrees for piece in shards.slices] == [1, 1]

    def test_prologue_carries_root_attributes(self):
        text = '<r id="1" note="a&amp;b"><a/><b/></r>'
        shards = split_document(text, 2)
        assert shards is not None
        assert [e.kind for e in shards.prologue_events] == ["start", "attr", "attr"]
        assert shards.prologue_events[2].value == "a&b"
        assert shards.prologue_ids == 3
        assert replay(shards) == serial(text)

    def test_top_level_text_comments_cdata_pis(self):
        text = (
            "<r>lead<a>1</a><!-- c -->mid<a>2</a>"
            "<![CDATA[raw <>&]]><a>3</a><?pi data?>tail</r>"
        )
        shards = split_document(text, 3)
        assert shards is not None
        assert replay(shards) == serial(text)
        assert replay(shards, strip_whitespace=False) == serial(
            text, strip_whitespace=False
        )

    def test_prolog_and_epilog_constructs(self):
        text = (
            '<?xml version="1.0"?><!DOCTYPE r [<!ELEMENT r ANY>]>'
            "<!-- head --><r><a>1</a><b>2</b></r><!-- tail --><?pi?>"
        )
        shards = split_document(text, 2)
        assert shards is not None
        assert replay(shards) == serial(text)

    def test_nested_same_tag_children(self):
        text = "<r><r><r/></r><r>x</r><r/></r>"
        shards = split_document(text, 2)
        assert shards is not None
        assert replay(shards) == serial(text)

    def test_entities_in_content_and_attributes(self):
        text = '<r><a v="&lt;&amp;&gt;">&#65;B</a><a>&quot;q&apos;</a></r>'
        shards = split_document(text, 2)
        assert shards is not None
        assert replay(shards) == serial(text)

    def test_self_closing_children(self):
        text = "<r><a/><b x='1'/><c/></r>"
        shards = split_document(text, 3)
        assert shards is not None
        assert replay(shards) == serial(text)

    def test_final_event_is_root_end(self):
        text = "<r><a/><b/></r>"
        shards = split_document(text, 2)
        events = replay(shards)
        assert events[-1] == Event(END, "r")


class TestSerialFallback:
    @pytest.mark.parametrize(
        "text",
        [
            "<r/>",  # childless root
            "<r>text only</r>",  # no element children
            "<r><only/></r>",  # a single subtree cannot be split
            "<r><a></r>",  # malformed: let the serial tokenizer error
            "<r><a/></r><r/>",  # content after the root element
            "not xml at all",
            "<root><a/><b/><",  # truncated input ending on a bare '<'
            "<root><a/><b/></",  # truncated input ending on '</'
        ],
    )
    def test_unsliceable_documents_return_none(self, text):
        assert split_document(text, 4) is None

    def test_num_shards_below_two_returns_none(self):
        assert split_document("<r><a/><b/></r>", 1) is None

    def test_slices_partition_the_content(self):
        text = "<r>x<a>1</a>y<b>2</b>z<c>3</c>w</r>"
        shards = split_document(text, 3)
        assert shards is not None
        assert shards.slices[0].start == shards.content_start
        assert shards.slices[-1].end == shards.content_end
        for left, right in zip(shards.slices, shards.slices[1:]):
            assert left.end == right.start


class TestDuplicateRootAttributes:
    def test_prologue_replays_raw_events_but_counts_one_id(self):
        # The tokenizer emits one attr event per occurrence; the DOM keeps
        # one node (last value wins), so the id budget counts names.
        text = '<r a="1" a="2" b="3"><x/><y/></r>'
        shards = split_document(text, 2)
        assert shards is not None
        assert [e.name for e in shards.prologue_events] == ["r", "a", "a", "b"]
        assert shards.prologue_ids == 3  # root + {a, b}
        assert replay(shards) == serial(text)


class TestIdAccounting:
    def test_consumed_ids_match_serial_numbering(self):
        """Prologue + per-shard event counts must reproduce reindex ids."""
        from repro.keys.stream import KeyStreamChecker

        text = '<r a="0"><x i="1">t</x><x i="2"/><x>u</x><x i="3"><y/></x></r>'
        shards = split_document(text, 2)
        assert shards is not None
        total = 0
        for index in range(len(shards)):
            checker = KeyStreamChecker([])
            for event in shards.prologue_events:
                checker.feed(event)
            checker.begin_shard(first=index == 0)
            consumed_prologue = checker._next_id
            assert consumed_prologue == shards.prologue_ids
            for event in shards.shard_events(index):
                checker.feed(event)
            total += checker._next_id - consumed_prologue
        serial_checker = KeyStreamChecker([])
        for event in iter_events(text):
            serial_checker.feed(event)
        assert shards.prologue_ids + total == serial_checker._next_id
