"""Unit tests for the programmatic document builder."""

from repro.xmlmodel.builder import attr, document, element, text
from repro.xmlmodel.tree import XMLTree


class TestBuilder:
    def test_element_with_attributes_and_children(self):
        node = element("book", {"isbn": "123"}, element("title", text("XML")))
        assert node.attribute_value("isbn") == "123"
        assert node.child_elements("title")[0].text_content() == "XML"

    def test_attributes_optional(self):
        node = element("book", element("title"))
        assert node.attributes == {}
        assert [child.label for child in node.children] == ["title"]

    def test_string_children_become_text_nodes(self):
        node = element("title", "XML")
        assert node.text_content() == "XML"

    def test_attr_helper(self):
        assert attr("isbn", "123") == {"isbn": "123"}

    def test_attribute_values_coerced_to_str(self):
        node = element("chapter", {"number": 7})
        assert node.attribute_value("number") == "7"

    def test_document_assigns_ids(self):
        tree = document(element("r", element("a"), element("b")))
        assert isinstance(tree, XMLTree)
        assert [node.node_id for node in tree.iter_nodes()] == [0, 1, 2]

    def test_nested_builders_compose(self):
        tree = document(
            element(
                "r",
                element("book", {"isbn": "1"}, element("chapter", {"number": "1"})),
                element("book", {"isbn": "2"}),
            )
        )
        assert len(tree.elements_by_tag("book")) == 2
        assert len(tree.elements_by_tag("chapter")) == 1
