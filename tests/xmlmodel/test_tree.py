"""Unit tests for XMLTree: identifiers, value() semantics, copy."""

import pytest

from repro.xmlmodel.builder import document, element, text
from repro.xmlmodel.nodes import ElementNode
from repro.xmlmodel.tree import XMLTree


@pytest.fixture()
def small_tree():
    return document(
        element(
            "r",
            element(
                "book",
                {"isbn": "123"},
                element("title", text("XML")),
                element(
                    "chapter",
                    {"number": "1"},
                    element("name", text("Introduction")),
                ),
            ),
        )
    )


class TestConstruction:
    def test_root_must_be_element(self):
        with pytest.raises(TypeError):
            XMLTree("not a node")  # type: ignore[arg-type]

    def test_node_ids_assigned_in_document_order(self, small_tree):
        ids = [node.node_id for node in small_tree.iter_nodes()]
        assert ids == list(range(len(small_tree)))

    def test_root_has_id_zero(self, small_tree):
        assert small_tree.root.node_id == 0

    def test_node_lookup_roundtrip(self, small_tree):
        for node in small_tree.iter_nodes():
            assert small_tree.node(node.node_id) is node

    def test_node_lookup_missing_raises(self, small_tree):
        with pytest.raises(KeyError):
            small_tree.node(10_000)

    def test_len_counts_all_node_kinds(self, small_tree):
        # r, book, @isbn, title, text, chapter, @number, name, text
        assert len(small_tree) == 9

    def test_reindex_after_mutation(self, small_tree):
        book = small_tree.root.child_elements("book")[0]
        book.append_child(element("appendix"))
        small_tree.reindex()
        labels = {node.label for node in small_tree.iter_nodes()}
        assert "appendix" in labels
        ids = [node.node_id for node in small_tree.iter_nodes()]
        assert ids == list(range(len(small_tree)))


class TestValueSemantics:
    def test_attribute_value(self, small_tree):
        book = small_tree.root.child_elements("book")[0]
        assert XMLTree.value(book.attribute("isbn")) == "123"

    def test_text_value(self, small_tree):
        title = small_tree.root.child_elements("book")[0].child_elements("title")[0]
        assert XMLTree.value(title.children[0]) == "XML"

    def test_single_text_element_collapses_to_text(self, small_tree):
        title = small_tree.root.child_elements("book")[0].child_elements("title")[0]
        assert XMLTree.value(title) == "XML"

    def test_element_value_is_preorder_listing(self, small_tree):
        chapter = small_tree.root.child_elements("book")[0].child_elements("chapter")[0]
        value = XMLTree.value(chapter)
        # Example 2.5: value(chapter) = (@number:1, name: (S: Introduction))-like
        assert value.startswith("(")
        assert "@number:1" in value
        assert "Introduction" in value

    def test_equal_subtrees_have_equal_values(self):
        make = lambda: element("chapter", {"number": "1"}, element("name", text("Intro")))
        assert XMLTree.value(make()) == XMLTree.value(make())

    def test_different_attribute_values_differ(self):
        first = element("chapter", {"number": "1"})
        second = element("chapter", {"number": "2"})
        assert XMLTree.value(first) != XMLTree.value(second)

    def test_nested_structure_reflected(self):
        node = element("a", element("b", element("c", text("deep"))))
        value = XMLTree.value(node)
        assert "b" in value and "c" in value and "deep" in value


class TestQueriesAndCopy:
    def test_elements_by_tag(self, small_tree):
        assert len(small_tree.elements_by_tag("chapter")) == 1
        assert len(small_tree.elements_by_tag("missing")) == 0

    def test_find_first(self, small_tree):
        assert small_tree.find_first("title").label == "title"
        assert small_tree.find_first("nothing") is None

    def test_copy_is_deep(self, small_tree):
        clone = small_tree.copy()
        assert len(clone) == len(small_tree)
        assert clone.root is not small_tree.root
        # Mutating the clone does not affect the original.
        clone.root.child_elements("book")[0].set_attribute("isbn", "999")
        assert small_tree.root.child_elements("book")[0].attribute_value("isbn") == "123"

    def test_copy_preserves_values(self, small_tree):
        clone = small_tree.copy()
        assert XMLTree.value(clone.root) == XMLTree.value(small_tree.root)

    def test_iter_elements_only_elements(self, small_tree):
        assert all(node.is_element() for node in small_tree.iter_elements())
        assert len(list(small_tree.iter_elements())) == 5
