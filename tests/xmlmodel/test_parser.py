"""Unit tests for the XML parser (and its round trip with the serializer)."""

import pytest

from repro.xmlmodel.parser import XMLSyntaxError, parse_document, parse_fragment
from repro.xmlmodel.serializer import serialize
from repro.xmlmodel.tree import XMLTree


class TestBasicParsing:
    def test_single_empty_element(self):
        tree = parse_document("<root/>")
        assert tree.root.label == "root"
        assert len(tree.root.children) == 0

    def test_element_with_text(self):
        tree = parse_document("<title>XML</title>")
        assert tree.root.text_content() == "XML"

    def test_attributes_single_and_double_quotes(self):
        tree = parse_document("""<book isbn="123" lang='en'/>""")
        assert tree.root.attribute_value("isbn") == "123"
        assert tree.root.attribute_value("lang") == "en"

    def test_nested_elements(self):
        tree = parse_document("<r><book><title>XML</title></book></r>")
        book = tree.root.child_elements("book")[0]
        assert book.child_elements("title")[0].text_content() == "XML"

    def test_self_closing_inside_parent(self):
        tree = parse_document("<r><empty/><b>x</b></r>")
        assert [c.label for c in tree.root.child_elements()] == ["empty", "b"]

    def test_whitespace_only_text_is_stripped_by_default(self):
        tree = parse_document("<r>\n  <a/>\n  <b/>\n</r>")
        assert [c.label for c in tree.root.children] == ["a", "b"]

    def test_whitespace_preserved_when_requested(self):
        tree = parse_document("<r>  <a/></r>", strip_whitespace=False)
        assert tree.root.children[0].is_text()

    def test_mixed_content_text_kept(self):
        tree = parse_document("<p>hello <b>world</b>!</p>")
        kinds = [child.label for child in tree.root.children]
        assert kinds == ["#text", "b", "#text"]


class TestPrologAndMisc:
    def test_xml_declaration_skipped(self):
        tree = parse_document('<?xml version="1.0" encoding="UTF-8"?><r/>')
        assert tree.root.label == "r"

    def test_doctype_skipped(self):
        tree = parse_document("<!DOCTYPE r SYSTEM 'r.dtd'><r/>")
        assert tree.root.label == "r"

    def test_doctype_with_internal_subset(self):
        source = "<!DOCTYPE r [<!ELEMENT r (#PCDATA)> <!ATTLIST r a CDATA #IMPLIED>]><r a='1'/>"
        tree = parse_document(source)
        assert tree.root.attribute_value("a") == "1"

    def test_comments_skipped(self):
        tree = parse_document("<!-- top --><r><!-- inner --><a/></r><!-- bottom -->")
        assert [c.label for c in tree.root.children] == ["a"]

    def test_processing_instruction_skipped(self):
        tree = parse_document("<r><?pi data?><a/></r>")
        assert [c.label for c in tree.root.children] == ["a"]

    def test_cdata_section(self):
        tree = parse_document("<r><![CDATA[a < b & c]]></r>")
        assert tree.root.text_content() == "a < b & c"


class TestEntities:
    def test_predefined_entities_in_text(self):
        tree = parse_document("<r>&lt;tag&gt; &amp; &quot;x&quot; &apos;y&apos;</r>")
        assert tree.root.text_content() == "<tag> & \"x\" 'y'"

    def test_entities_in_attributes(self):
        tree = parse_document('<r a="&lt;&amp;&gt;"/>')
        assert tree.root.attribute_value("a") == "<&>"

    def test_numeric_character_references(self):
        tree = parse_document("<r>&#65;&#x42;</r>")
        assert tree.root.text_content() == "AB"

    def test_unknown_entity_left_verbatim(self):
        tree = parse_document("<r>&unknown;</r>")
        assert tree.root.text_content() == "&unknown;"


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "",
            "just text",
            "<r>",
            "<r></s>",
            "<r><a></r></a>",
            "<r a=></r>",
            "<r a='1></r>",
            "<r/><extra/>",
            "<r><![CDATA[never closed</r>",
        ],
    )
    def test_malformed_documents_raise(self, source):
        with pytest.raises(XMLSyntaxError):
            parse_document(source)

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            parse_document("<r></wrong>")
        assert excinfo.value.position >= 0


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "<r/>",
            "<r a='1' b='2'/>",
            "<r><a>x</a><b><c n='1'>y</c></b></r>",
            "<book isbn='123'><title>XML &amp; more</title></book>",
        ],
    )
    def test_parse_serialize_parse_is_stable(self, source):
        first = parse_document(source)
        text1 = serialize(first)
        second = parse_document(text1)
        assert XMLTree.value(first.root) == XMLTree.value(second.root)

    def test_parse_fragment_returns_element(self):
        fragment = parse_fragment("<a b='1'/>")
        assert fragment.label == "a"
        assert fragment.attribute_value("b") == "1"

    def test_figure1_like_document(self):
        source = """
        <r>
          <book isbn="123">
            <title>XML</title>
            <chapter number="1"><name>Introduction</name></chapter>
            <chapter number="10"><name>Conclusion</name></chapter>
          </book>
          <book isbn="234">
            <title>XML</title>
            <chapter number="1"><name>Getting Acquainted</name></chapter>
          </book>
        </r>
        """
        tree = parse_document(source)
        assert len(tree.elements_by_tag("book")) == 2
        assert len(tree.elements_by_tag("chapter")) == 3
