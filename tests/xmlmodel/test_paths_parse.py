"""Unit tests for path-expression parsing, rendering and algebra."""

import pytest

from repro.xmlmodel.paths import (
    PathExpression,
    PathStep,
    StepKind,
    concat,
    parse_path,
)


class TestParsing:
    @pytest.mark.parametrize("spelling", ["", ".", "epsilon", "ε", "  .  "])
    def test_epsilon_spellings(self, spelling):
        assert parse_path(spelling).is_epsilon

    def test_single_label(self):
        path = parse_path("book")
        assert [s.text for s in path.steps] == ["book"]

    def test_child_steps(self):
        path = parse_path("book/chapter/name")
        assert [s.text for s in path.steps] == ["book", "chapter", "name"]

    def test_descendant_prefix(self):
        path = parse_path("//book")
        assert [s.kind for s in path.steps] == [StepKind.DESCENDANT, StepKind.LABEL]

    def test_descendant_in_the_middle(self):
        path = parse_path("book//chapter")
        assert [s.text for s in path.steps] == ["book", "//", "chapter"]

    def test_attribute_step(self):
        path = parse_path("//book/@isbn")
        assert path.steps[-1].kind is StepKind.ATTRIBUTE
        assert path.steps[-1].name == "isbn"

    def test_bare_attribute(self):
        path = parse_path("@number")
        assert path.is_attribute_step

    def test_trailing_descendant(self):
        path = parse_path("book//")
        assert path.steps[-1].kind is StepKind.DESCENDANT

    def test_only_descendant(self):
        path = parse_path("//")
        assert len(path.steps) == 1

    def test_empty_step_rejected(self):
        # '/' alone separates steps; a name is required between separators.
        with pytest.raises(ValueError):
            parse_path("book/ /chapter")


class TestNormalisationAndEquality:
    def test_adjacent_descendants_collapse(self):
        assert parse_path("book////chapter") == parse_path("book//chapter")

    def test_equality_and_hash(self):
        assert parse_path("//book/chapter") == parse_path("//book/chapter")
        assert hash(parse_path("a/b")) == hash(parse_path("a/b"))
        assert parse_path("a/b") != parse_path("a//b")

    def test_text_round_trips(self):
        for source in [".", "//book", "book/chapter", "//book/chapter/@number", "a//b", "//"]:
            assert parse_path(parse_path(source).text) == parse_path(source)

    def test_epsilon_text_is_dot(self):
        assert PathExpression.epsilon().text == "."


class TestProperties:
    def test_is_simple(self):
        assert parse_path("book/chapter").is_simple
        assert not parse_path("//book").is_simple
        assert parse_path("").is_simple

    def test_length(self):
        assert parse_path("").length == 0
        assert parse_path("//book/chapter").length == 3

    def test_labels_of_simple_path(self):
        assert parse_path("book/@isbn").labels() == ["book", "@isbn"]

    def test_labels_rejects_descendant(self):
        with pytest.raises(ValueError):
            parse_path("//book").labels()

    def test_ends_with_attribute(self):
        assert parse_path("book/@isbn").ends_with_attribute
        assert not parse_path("book/title").ends_with_attribute


class TestAlgebra:
    def test_concat_basic(self):
        assert concat("//book", "chapter") == parse_path("//book/chapter")

    def test_concat_with_epsilon_is_identity(self):
        path = parse_path("//book")
        assert concat(path, "") == path
        assert concat("", path) == path

    def test_concat_collapses_descendants(self):
        assert concat("book//", "//chapter") == parse_path("book//chapter")

    def test_truediv_operator(self):
        assert parse_path("//book") / "chapter" == parse_path("//book/chapter")

    def test_prefixes_enumerates_all_splits(self):
        path = parse_path("a/b/c")
        splits = list(path.prefixes())
        assert len(splits) == 4
        assert splits[0] == (PathExpression.epsilon(), path)
        assert splits[-1] == (path, PathExpression.epsilon())
        for prefix, suffix in splits:
            assert concat(prefix, suffix) == path

    def test_of_coercion(self):
        assert PathExpression.of("a/b") == parse_path("a/b")
        assert PathExpression.of(parse_path("a")) == parse_path("a")
        assert PathExpression.of([PathStep.label("a")]) == parse_path("a")


class TestPathStep:
    def test_label_factory_detects_attribute(self):
        assert PathStep.label("@isbn").kind is StepKind.ATTRIBUTE
        assert PathStep.label("isbn").kind is StepKind.LABEL

    def test_descendant_has_no_name(self):
        with pytest.raises(ValueError):
            PathStep(StepKind.DESCENDANT, "x")

    def test_label_needs_name(self):
        with pytest.raises(ValueError):
            PathStep(StepKind.LABEL, "")

    def test_matches_label(self):
        assert PathStep.label("book").matches_label("book")
        assert not PathStep.label("book").matches_label("chapter")
        assert PathStep.attribute("isbn").matches_label("@isbn")

    def test_descendant_matches_label_raises(self):
        with pytest.raises(ValueError):
            PathStep.descendant().matches_label("book")
