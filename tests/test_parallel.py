"""Tests of the parallel execution plane (:mod:`repro.parallel`).

The shard/merge *semantics* are pinned at scale by the Hypothesis suite in
``tests/property/test_parallel_differential.py`` (in-process executor).
These tests cover the coordinator itself: worker-count resolution, the
real process pool, the serial fallbacks, and the library entry points.
"""

import pytest

from repro.experiments.scenarios import ScenarioSpec, build_scenario, scenario_text
from repro.keys.key import XMLKey
from repro.keys.stream import stream_violations
from repro.parallel import JOBS_ENV, ShardedRun, resolve_jobs, run_sharded
from repro.transform.dsl import parse_transformation
from repro.transform.stream import StreamShredder, stream_evaluate_transformation


TRANSFORM_TEXT = """
table book
  var xa <- xr : //book
  var x1 <- xa : @isbn
  var x2 <- xa : title
  field isbn  = value(x1)
  field title = value(x2)

table chapter
  var ya <- xr : //book
  var yc <- ya : chapter
  var y2 <- yc : @number
  field number = value(y2)
"""

DOC = (
    '<lib year="2003">'
    '<book isbn="1"><title>A</title><chapter number="1"/><chapter number="2"/></book>'
    '<book isbn="2"><title>B</title><chapter number="1"/></book>'
    '<book isbn="2"><title>C</title></book>'
    '<book><title>D</title></book>'
    "</lib>"
)

KEYS = [
    XMLKey(".", "//book", ["isbn"]),
    XMLKey("//book", "chapter", ["number"]),
]


def violation_fingerprint(found):
    return [
        (v.key.text, v.context_node_id, v.kind, v.node_ids, v.detail) for v in found
    ]


@pytest.fixture()
def transformation():
    return parse_transformation(TRANSFORM_TEXT)


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins(self):
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs() == 5

    def test_zero_means_cpu_count(self):
        import os

        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "lots")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestRunShardedProcesses:
    """Real ProcessPoolExecutor runs (small inputs, few workers)."""

    def test_matches_serial_pipeline(self, transformation):
        serial = run_sharded(DOC, transformation=transformation, keys=KEYS, jobs=1)
        parallel = run_sharded(DOC, transformation=transformation, keys=KEYS, jobs=2)
        assert serial.shards == 1
        assert parallel.shards > 1
        assert set(serial.instances) == set(parallel.instances)
        for name, instance in serial.instances.items():
            assert parallel.instances[name].rows == instance.rows
        assert violation_fingerprint(parallel.violations) == violation_fingerprint(
            serial.violations
        )
        # The injected duplicates are found across shard boundaries.
        assert any(v.kind == "duplicate-value" for v in parallel.violations)
        assert any(v.kind == "missing-attribute" for v in parallel.violations)

    def test_keys_only_run(self):
        serial = run_sharded(DOC, keys=KEYS, jobs=1)
        parallel = run_sharded(DOC, keys=KEYS, jobs=2)
        assert parallel.instances is None
        assert violation_fingerprint(parallel.violations) == violation_fingerprint(
            serial.violations
        )

    def test_transformation_only_run(self, transformation):
        parallel = run_sharded(DOC, transformation=transformation, jobs=2)
        assert parallel.violations is None
        assert len(parallel.instances["chapter"].rows) == 3

    def test_requires_work(self):
        with pytest.raises(ValueError):
            run_sharded(DOC, jobs=2)


class TestSerialFallbacks:
    def test_unsplittable_document_falls_back(self, transformation):
        doc = '<lib><book isbn="1"><title>A</title></book></lib>'  # one subtree
        run = run_sharded(doc, transformation=transformation, keys=KEYS, jobs=4)
        assert run.shards == 1
        assert len(run.instances["book"].rows) == 1

    def test_root_bound_anchor_falls_back(self):
        rules = parse_transformation(
            """
            table whole
              var xa <- xr : //
              var x1 <- xa : title
              field title = value(x1)
            """
        )
        run = run_sharded(DOC, transformation=rules, jobs=4)
        assert run.shards == 1
        # The `//` anchor binds the root and every element below it.
        assert len(run.instances["whole"].rows) > 1

    def test_jobs_one_is_serial(self, transformation):
        run = run_sharded(DOC, transformation=transformation, jobs=1)
        assert run.shards == 1


class TestLibraryEntryPoints:
    def test_stream_shredder_run_jobs(self, transformation):
        serial = StreamShredder(transformation).run(DOC)
        parallel = StreamShredder(transformation).run(DOC, jobs=2)
        assert {n: i.rows for n, i in parallel.items()} == {
            n: i.rows for n, i in serial.items()
        }

    def test_stream_evaluate_transformation_jobs(self, transformation):
        serial = stream_evaluate_transformation(transformation, DOC)
        parallel = stream_evaluate_transformation(transformation, DOC, jobs=2)
        assert {n: i.rows for n, i in parallel.items()} == {
            n: i.rows for n, i in serial.items()
        }

    def test_stream_violations_jobs(self):
        serial = stream_violations(DOC, KEYS)
        parallel = stream_violations(DOC, KEYS, jobs=2)
        assert violation_fingerprint(parallel) == violation_fingerprint(serial)

    def test_env_variable_selects_parallel_plane(self, monkeypatch, transformation):
        monkeypatch.setenv(JOBS_ENV, "2")
        parallel = StreamShredder(transformation).run(DOC)
        monkeypatch.delenv(JOBS_ENV)
        serial = StreamShredder(transformation).run(DOC)
        assert {n: i.rows for n, i in parallel.items()} == {
            n: i.rows for n, i in serial.items()
        }


class TestDuplicateRootAttributes:
    """Duplicate attribute names: tokenizer emits both, the DOM keeps one
    node per name with the last value — the merge must mirror that."""

    DOC = '<root a="1" a="2" x="9"><u>p</u><v>q</v><u>p</u></root>'

    def test_root_fields_value_matches_serial(self):
        rules = parse_transformation(
            """
            table whole
              var x1 <- xr : u
              field f = value(x1)
            """
        )
        # Also a rule with fields on the root variable itself.
        from repro.transform.rule import TableRule

        root_rule = TableRule("doc")
        root_rule.add_field("content", root_rule.root_variable)
        all_rules = list(rules) + [root_rule]
        serial = run_sharded(self.DOC, transformation=all_rules, jobs=1)
        parallel = run_sharded(
            self.DOC, transformation=all_rules, jobs=2, use_processes=False
        )
        assert parallel.shards > 1
        for name, instance in serial.instances.items():
            assert parallel.instances[name].rows == instance.rows

    def test_violation_node_ids_match_serial(self):
        keys = [XMLKey(".", "//u", [])]
        serial = run_sharded(self.DOC, keys=keys, jobs=1)
        parallel = run_sharded(self.DOC, keys=keys, jobs=2, use_processes=False)
        assert violation_fingerprint(parallel.violations) == violation_fingerprint(
            serial.violations
        )
        assert len(serial.violations) == 1  # the two <u>p</u> duplicates

    def test_binding_counters_count_anchor_matches(self):
        from repro.transform.stream import RuleStreamer
        from repro.xmlmodel.events import iter_events

        rules = parse_transformation(
            """
            table t
              var x1 <- xr : //u
              field f = value(x1)
            """
        )
        streamer = RuleStreamer(next(iter(rules)), shard_mode=True)
        for event in iter_events(self.DOC):
            streamer.feed(event)
        result = streamer.shard_result()
        assert result.anchor_matches == [2]
        assert [len(block) for block in result.anchor_rows] == [2]


class TestScenarioScale:
    """A mid-size generated scenario through real processes."""

    def test_scenario_with_injected_violations(self):
        spec = ScenarioSpec(
            num_fields=10,
            depth=3,
            num_keys=5,
            fanout=3,
            duplicate_violations=4,
            missing_violations=4,
            seed=11,
        )
        scenario = build_scenario(spec)
        text = scenario_text(scenario)
        serial = run_sharded(
            text, transformation=[scenario.workload.rule], keys=scenario.keys, jobs=1
        )
        parallel = run_sharded(
            text, transformation=[scenario.workload.rule], keys=scenario.keys, jobs=2
        )
        assert parallel.shards > 1
        assert len(parallel.violations) == 8
        assert violation_fingerprint(parallel.violations) == violation_fingerprint(
            serial.violations
        )
        for name, instance in serial.instances.items():
            assert parallel.instances[name].rows == instance.rows


class TestZeroCopyMmapPath:
    """PathLike sources ship a slice table, not the text (PR 7).

    Workers ``mmap`` the file themselves and feed their byte range to the
    tokenizer; the pickled payload must therefore stay slice-table-sized,
    and every result must stay byte-identical to the in-memory text run.
    """

    def _write(self, tmp_path, text, encoding="ascii"):
        target = tmp_path / "doc.xml"
        target.write_text(text, encoding=encoding)
        return target

    def test_path_run_matches_text_run_with_process_pool(
        self, tmp_path, transformation
    ):
        target = self._write(tmp_path, DOC)
        serial = run_sharded(DOC, transformation=transformation, keys=KEYS, jobs=1)
        mapped = run_sharded(target, transformation=transformation, keys=KEYS, jobs=2)
        assert mapped.shards > 1
        assert set(mapped.instances) == set(serial.instances)
        for name, instance in serial.instances.items():
            assert mapped.instances[name].rows == instance.rows
        assert violation_fingerprint(mapped.violations) == violation_fingerprint(
            serial.violations
        )

    def test_non_ascii_file_degrades_to_text_plane(self, tmp_path, transformation):
        # Byte offsets and character offsets disagree: the coordinator
        # must ship text slices instead of mmap ranges — same answer.
        doc = DOC.replace("<title>A</title>", "<title>É</title>")
        target = self._write(tmp_path, doc, encoding="utf-8")
        serial = run_sharded(doc, transformation=transformation, jobs=1)
        run = run_sharded(target, transformation=transformation, jobs=2)
        for name, instance in serial.instances.items():
            assert run.instances[name].rows == instance.rows

    def test_mapped_payload_is_small_and_roundtrips(self, tmp_path):
        import pickle

        from repro.xmlmodel.shards import map_document_shards, split_document

        text = (
            "<lib>"
            + "".join(
                f"<book isbn='{i}'><title>T{i}</title></book>" for i in range(4000)
            )
            + "</lib>"
        )
        target = self._write(tmp_path, text)
        shards = split_document(text, 8)
        mapped = map_document_shards(shards, str(target))
        payload = pickle.dumps(mapped)
        assert len(payload) < len(text) // 50, "payload must not carry the text"
        restored = pickle.loads(payload)
        assert len(restored) == len(shards)
        assert list(restored.prologue_events) == list(shards.prologue_events)
        for index in range(len(shards)):
            assert list(restored.shard_events(index)) == list(
                shards.shard_events(index)
            )
