"""Unit tests for transitive key sets and the *precedes* relation."""

from repro.keys.key import parse_key, parse_keys
from repro.keys.transitive import (
    chain_to_root,
    immediately_precedes,
    is_transitive_set,
    precedes,
)


K1 = parse_key("K1 = (., (//book, {@isbn}))")
K2 = parse_key("K2 = (//book, (chapter, {@number}))")
K6 = parse_key("K6 = (//book/chapter, (section, {@number}))")


class TestImmediatelyPrecedes:
    def test_absolute_precedes_relative(self):
        # K1's scope (., //book) equals K2's context //book.
        assert immediately_precedes(K1, K2)

    def test_chain_middle_link(self):
        assert immediately_precedes(K2, K6)

    def test_not_precedes_in_reverse(self):
        assert not immediately_precedes(K2, K1)
        assert not immediately_precedes(K6, K2)

    def test_no_relationship_between_siblings(self):
        other = parse_key("(//book, (appendix, {@letter}))")
        assert not immediately_precedes(other, K6)

    def test_language_equivalence_not_syntactic_equality(self):
        # context '//book//' + target 'chapter' vs context '//book////chapter'
        first = parse_key("(//book, (//chapter, {@number}))")
        second = parse_key("(//book//chapter, (section, {@number}))")
        assert immediately_precedes(first, second)


class TestPrecedes:
    def test_transitive_closure(self):
        assert precedes(K1, K6, [K1, K2, K6])

    def test_missing_intermediate_breaks_the_chain(self):
        assert not precedes(K1, K6, [K1, K6])

    def test_direct_precedence_is_included(self):
        assert precedes(K1, K2, [K1, K2])


class TestIsTransitiveSet:
    def test_paper_example_41_positive(self):
        # Example 4.1: {K1, K2} is transitive.
        assert is_transitive_set([K1, K2])

    def test_paper_example_41_negative(self):
        # Example 4.1: {K2} alone is not.
        assert not is_transitive_set([K2])

    def test_full_paper_key_set(self, paper_keys):
        assert is_transitive_set(paper_keys)

    def test_absolute_keys_only(self):
        assert is_transitive_set([K1])
        assert is_transitive_set([])

    def test_three_level_chain(self):
        assert is_transitive_set([K1, K2, K6])
        assert not is_transitive_set([K1, K6])


class TestChainToRoot:
    def test_chain_for_relative_key(self):
        chain = chain_to_root(K6, [K1, K2, K6])
        assert chain == [K1, K2, K6]

    def test_chain_for_absolute_key_is_itself(self):
        assert chain_to_root(K1, [K1, K2]) == [K1]

    def test_no_chain_returns_empty(self):
        assert chain_to_root(K6, [K6]) == []
        assert chain_to_root(K6, [K1, K6]) == []
