"""Unit tests for the XMLKey value type and its textual syntax."""

import pytest

from repro.keys.key import XMLKey, parse_key, parse_keys
from repro.xmlmodel.paths import parse_path


class TestConstruction:
    def test_components_are_coerced(self):
        key = XMLKey("//book", "chapter", {"@number"})
        assert key.context == parse_path("//book")
        assert key.target == parse_path("chapter")
        assert key.attributes == frozenset({"number"})

    def test_single_attribute_string(self):
        key = XMLKey(".", "//book", "isbn")
        assert key.attributes == frozenset({"isbn"})

    def test_empty_attribute_set(self):
        key = XMLKey("//book", "title", ())
        assert key.attributes == frozenset()

    def test_absolute_vs_relative(self):
        assert XMLKey(".", "//book", {"isbn"}).is_absolute
        assert not XMLKey("//book", "chapter", {"number"}).is_absolute
        assert XMLKey("//book", "chapter", {"number"}).is_relative

    def test_context_target_concatenation(self):
        key = XMLKey("//book", "chapter", {"number"})
        assert key.context_target == parse_path("//book/chapter")

    def test_size(self):
        key = XMLKey("//book", "chapter", {"number"})
        assert key.size == 2 + 1 + 1

    def test_attribute_list_sorted(self):
        key = XMLKey(".", "//p", {"z", "a", "m"})
        assert key.attribute_list == ["a", "m", "z"]


class TestValueSemantics:
    def test_equality_ignores_name(self):
        first = XMLKey("//book", "chapter", {"number"}, name="K2")
        second = XMLKey("//book", "chapter", {"number"}, name="other")
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality_on_attributes(self):
        assert XMLKey("//book", "chapter", {"number"}) != XMLKey("//book", "chapter", set())

    def test_usable_in_sets(self):
        keys = {XMLKey("//book", "chapter", {"number"}), XMLKey("//book", "chapter", {"number"})}
        assert len(keys) == 1

    def test_with_name(self):
        key = XMLKey("//book", "chapter", {"number"}).with_name("K2")
        assert key.name == "K2"

    def test_rebased(self):
        key = XMLKey("chapter", "section", {"number"})
        rebased = key.rebased("//book")
        assert rebased.context == parse_path("//book/chapter")
        assert rebased.target == key.target


class TestTextualSyntax:
    def test_parse_simple(self):
        key = parse_key("(//book, (chapter, {@number}))")
        assert key.context == parse_path("//book")
        assert key.target == parse_path("chapter")
        assert key.attributes == frozenset({"number"})

    def test_parse_named(self):
        key = parse_key("K1 = (., (//book, {@isbn}))")
        assert key.name == "K1"
        assert key.is_absolute

    def test_parse_empty_attribute_set(self):
        key = parse_key("(//book, (title, {}))")
        assert key.attributes == frozenset()

    def test_parse_multiple_attributes(self):
        key = parse_key("(., (//conference, {@acronym, @year}))")
        assert key.attributes == frozenset({"acronym", "year"})

    def test_round_trip_through_text(self):
        original = parse_key("K6 = (//book/chapter, (section, {@number}))")
        assert parse_key(original.text) == original

    def test_parse_keys_multi_line_with_comments(self):
        keys = parse_keys(
            """
            # the document-wide book key
            K1 = (., (//book, {@isbn}))

            K2 = (//book, (chapter, {@number}))
            """
        )
        assert [key.name for key in keys] == ["K1", "K2"]

    @pytest.mark.parametrize(
        "bad",
        [
            "not a key",
            "(//book, chapter, {@number})",
            "(//book, (chapter, @number))",
            "(//book)",
        ],
    )
    def test_malformed_syntax_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_key(bad)

    def test_str_contains_components(self):
        key = XMLKey("//book", "chapter", {"number"}, name="K2")
        assert "K2" in str(key)
        assert "//book" in str(key)
        assert "@number" in str(key)
