"""Unit tests for the key-implication engine (``Σ ⊨ φ``)."""

import pytest

from repro.keys.implication import ImplicationEngine, implies
from repro.keys.key import XMLKey, parse_key, parse_keys


@pytest.fixture()
def engine(paper_keys):
    return ImplicationEngine(paper_keys)


class TestAxioms:
    def test_epsilon_rule(self, engine):
        # Any subtree has a unique root: (C, (., {})) always holds.
        assert engine.implies_parts("//book", ".", ())
        assert engine.implies_parts(".", ".", ())
        assert engine.implies_parts("//book/chapter/section", ".", ())

    def test_epsilon_rule_with_attributes_requires_existence(self, engine):
        # (//book, (., {@isbn})) needs @isbn to exist on books — guaranteed by K1.
        assert engine.implies_parts("//book", ".", {"isbn"})
        # ... but @publisher existence is not guaranteed by any key.
        assert not engine.implies_parts("//book", ".", {"publisher"})

    def test_attribute_uniqueness_rule(self, engine):
        # An element has at most one attribute of a given name.
        assert engine.implies_parts("//book", "@isbn", ())
        assert engine.implies_parts("//book/chapter", "@anything", ())

    def test_member_of_sigma_is_implied(self, paper_keys, engine):
        for key in paper_keys:
            assert engine.implies(key)


class TestStructuralRules:
    def test_target_to_context(self, engine):
        # K7 = (//book, (author/contact, {})) gives (//book/author, (contact, {})).
        assert engine.implies_parts("//book/author", "contact", ())

    def test_target_to_context_with_attributes(self, engine):
        # K1 = (., (//book, {@isbn})): splitting //book is only possible at
        # the '//' boundary, giving (// , (book, {@isbn})) — any context
        # contained in '//' (i.e. any element context) identifies its book
        # children by @isbn.
        assert engine.implies_parts("//", "book", {"isbn"})

    def test_context_containment(self, engine):
        # K2 holds for //book contexts, hence for the more specific r/book.
        assert engine.implies_parts("r/book", "chapter", {"number"})

    def test_target_containment(self, engine):
        # Absolute key on //book covers the more specific target r/book.
        assert engine.implies_parts(".", "r/book", {"isbn"})

    def test_attribute_weakening_with_existence(self, engine):
        # Books are keyed by @isbn; adding @number to the key of chapters is
        # sound because K2 requires @number to exist on chapters.
        assert engine.implies_parts("//book", "chapter", {"number"})
        # Superset {number, extra}: @extra is not guaranteed to exist.
        assert not engine.implies_parts("//book", "chapter", {"number", "extra"})

    def test_prefix_uniqueness_composition(self):
        keys = parse_keys(
            """
            (//order, (shipping, {}))
            (//order/shipping, (address, {}))
            """
        )
        # at most one shipping per order and one address per shipping
        #   ⇒ at most one shipping/address per order.
        assert implies(keys, XMLKey("//order", "shipping/address", ()))

    def test_prefix_uniqueness_with_attributes(self):
        keys = parse_keys(
            """
            (//order, (shipping, {}))
            (//order/shipping, (parcel, {@code}))
            """
        )
        assert implies(keys, XMLKey("//order", "shipping/parcel", {"code"}))

    def test_prefix_uniqueness_needs_unique_prefix(self):
        keys = parse_keys(
            """
            (//order/shipping, (parcel, {@code}))
            """
        )
        # Several shipping elements may exist, so parcels are not identified
        # within the order by @code alone.
        assert not implies(keys, XMLKey("//order", "shipping/parcel", {"code"}))


class TestNonImplications:
    def test_chapter_not_globally_keyed(self, engine):
        # Example 4.2: (., (//book/chapter, {@number})) is NOT implied.
        assert not engine.implies_parts(".", "//book/chapter", {"number"})

    def test_section_not_globally_keyed(self, engine):
        assert not engine.implies_parts(".", "//book/chapter/section", {"number"})

    def test_chapter_name_not_unique_in_book(self, engine):
        # A book may have several chapters, each with a name.
        assert not engine.implies_parts("//book", "chapter/name", ())

    def test_author_not_keyed(self, engine):
        assert not engine.implies_parts("//book", "author", ())

    def test_unrelated_label(self, engine):
        assert not engine.implies_parts(".", "//magazine", {"issn"})

    def test_wrong_attribute(self, engine):
        assert not engine.implies_parts(".", "//book", {"title"})

    def test_empty_sigma_only_axioms(self):
        engine = ImplicationEngine([])
        assert engine.implies_parts("//a", ".", ())
        assert engine.implies_parts("//a", "@b", ())
        assert not engine.implies_parts(".", "//a", {"id"})


class TestEngineBehaviour:
    def test_memoisation_counts_queries(self, paper_keys):
        engine = ImplicationEngine(paper_keys)
        before = engine.query_count
        engine.implies_parts("//book", "chapter", {"number"})
        engine.implies_parts("//book", "chapter", {"number"})
        assert engine.query_count == before + 2  # queries counted, results cached

    def test_implies_accepts_key_objects(self, paper_keys):
        engine = ImplicationEngine(paper_keys)
        assert engine.implies(parse_key("(//book, (chapter, {@number}))"))

    def test_one_shot_helper(self, paper_keys):
        assert implies(paper_keys, parse_key("(//book, (title, {}))"))

    def test_soundness_spot_check_against_documents(self, figure1, paper_keys):
        """Queries answered 'yes' must hold on the concrete Figure 1 document."""
        from repro.keys.satisfaction import satisfies

        engine = ImplicationEngine(paper_keys)
        queries = [
            XMLKey("//book/author", "contact", ()),
            XMLKey("r/book", "chapter", {"number"}),
            XMLKey("//book", "chapter", {"number"}),
            XMLKey(".", "r/book", {"isbn"}),
            XMLKey("//book/chapter", "@number", ()),
        ]
        for query in queries:
            if engine.implies(query):
                assert satisfies(figure1, query), query.text
