"""Unit tests for the single-pass streaming key checker."""

import pytest

from repro.experiments.scenarios import ScenarioSpec, build_scenario, scenario_text
from repro.keys.key import XMLKey, parse_key
from repro.keys.satisfaction import satisfies, violations
from repro.keys.stream import KeyStreamChecker, stream_satisfies, stream_violations
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serializer import serialize


def canonical(found):
    return sorted(
        (v.key.text, v.context_node_id, v.kind, tuple(sorted(v.node_ids))) for v in found
    )


VIOLATING_DOC = """
<r>
 <book isbn="1">
  <title>T</title>
  <chapter number="1">
   <name>A</name>
   <section number="1"><name>s</name></section>
   <section number="1"><name>s2</name></section>
  </chapter>
  <chapter number="1"><name>B</name></chapter>
  <chapter><name>C</name></chapter>
 </book>
 <book isbn="1"><title>U</title></book>
 <book><title>V</title><title>W</title></book>
</r>
"""


class TestStreamViolations:
    def test_satisfied_document(self, figure1, paper_keys):
        assert stream_violations(figure1, paper_keys) == []
        assert stream_satisfies(serialize(figure1), paper_keys)

    def test_single_key_argument(self, figure1, paper_keys):
        assert stream_violations(figure1, paper_keys[0]) == []

    def test_matches_dom_on_violating_document(self, paper_keys):
        tree = parse_document(VIOLATING_DOC)
        dom = [v for key in paper_keys for v in violations(tree, key)]
        stream = stream_violations(tree, paper_keys)
        assert canonical(stream) == canonical(dom)
        assert stream  # the document does violate the paper's keys

    def test_node_ids_match_dom_numbering(self, paper_keys):
        tree = parse_document(VIOLATING_DOC)
        text = serialize(tree)
        reparsed = parse_document(text)
        dom = [v for key in paper_keys for v in violations(reparsed, key)]
        stream = stream_violations(text, paper_keys)
        assert canonical(stream) == canonical(dom)

    def test_duplicate_chapter_numbers_found(self):
        key = parse_key("(//book, (chapter, {@number}))")
        found = stream_violations(parse_document(VIOLATING_DOC), key)
        assert any(v.kind == "duplicate-value" for v in found)

    def test_missing_attribute_found(self):
        key = parse_key("(//book, (chapter, {@number}))")
        found = stream_violations(parse_document(VIOLATING_DOC), key)
        assert any(v.kind == "missing-attribute" for v in found)

    def test_violations_sorted_by_key_then_context(self, paper_keys):
        found = stream_violations(parse_document(VIOLATING_DOC), paper_keys)
        order = [(paper_keys.index(v.key), v.context_node_id) for v in found]
        assert order == sorted(order)

    @pytest.mark.parametrize(
        "key_text",
        [
            "(., (//book/@isbn, {}))",  # attribute targets
            "(//book/@isbn, (//, {}))",  # attribute contexts
            "(//chapter, (., {@number}))",  # epsilon target
            "(., (//, {}))",  # descendant-only target
            "(//book, (//section, {@number}))",  # '//' in the target
        ],
    )
    def test_exotic_paths_match_dom(self, key_text):
        tree = parse_document(VIOLATING_DOC)
        key = parse_key(key_text)
        assert canonical(stream_violations(tree, key)) == canonical(violations(tree, key))
        assert stream_satisfies(tree, key) == satisfies(tree, key)

    def test_shared_context_keys_are_bucketed(self, paper_keys):
        checker = KeyStreamChecker(paper_keys)
        # K2/K3/K7 share the //book context, K4/K6 share //book/chapter.
        assert len(checker.buckets) < len(paper_keys)

    def test_single_pass_multi_key(self):
        tree = parse_document(VIOLATING_DOC)
        keys = [
            parse_key("(//book, (chapter, {@number}))"),
            parse_key("(//book, (title, {}))"),
        ]
        merged = stream_violations(tree, keys)
        separate = [v for key in keys for v in violations(tree, key)]
        assert canonical(merged) == canonical(separate)


class TestInjectedScenarios:
    def test_injected_counts_exact(self):
        spec = ScenarioSpec(
            num_fields=16,
            depth=3,
            num_keys=8,
            fanout=3,
            duplicate_violations=4,
            missing_violations=3,
            seed=11,
        )
        scenario = build_scenario(spec)
        found = stream_violations(scenario_text(scenario), scenario.keys)
        by_kind = {}
        for violation in found:
            by_kind[violation.kind] = by_kind.get(violation.kind, 0) + 1
        assert by_kind == {
            "duplicate-value": scenario.expected_duplicates,
            "missing-attribute": scenario.expected_missing,
        }

    def test_clean_scenario_satisfies(self):
        spec = ScenarioSpec(num_fields=16, depth=3, num_keys=8, fanout=3, seed=2)
        scenario = build_scenario(spec)
        assert stream_satisfies(scenario_text(scenario), scenario.keys)
