"""Unit tests for the ``exist`` attribute-existence test of Fig. 5."""

from repro.keys.implication import attributes_exist
from repro.keys.key import parse_keys


class TestAttributesExist:
    def test_empty_attribute_set_trivially_exists(self, paper_keys):
        assert attributes_exist(paper_keys, "//book", ())

    def test_key_forces_existence_on_its_scope(self, paper_keys):
        # K1 requires every //book node to carry @isbn.
        assert attributes_exist(paper_keys, "//book", {"isbn"})

    def test_existence_on_contained_path(self, paper_keys):
        # r/book ⊆ //book, so @isbn exists there too.
        assert attributes_exist(paper_keys, "r/book", {"isbn"})

    def test_relative_key_scope(self, paper_keys):
        # K2's scope is //book/chapter: @number must exist on chapters.
        assert attributes_exist(paper_keys, "//book/chapter", {"number"})

    def test_not_guaranteed_attribute(self, paper_keys):
        assert not attributes_exist(paper_keys, "//book", {"publisher"})

    def test_not_guaranteed_on_wider_path(self, paper_keys):
        # @number is forced on //book/chapter, not on arbitrary chapters.
        assert not attributes_exist(paper_keys, "//chapter", {"number"})

    def test_multiple_attributes_from_different_keys(self):
        keys = parse_keys(
            """
            (., (//item, {@sku}))
            (., (//item, {@ean}))
            """
        )
        assert attributes_exist(keys, "//item", {"sku", "ean"})
        assert not attributes_exist(keys, "//item", {"sku", "ean", "upc"})

    def test_multi_attribute_key(self):
        keys = parse_keys("(., (//conf, {@acronym, @year}))")
        assert attributes_exist(keys, "//conf", {"acronym"})
        assert attributes_exist(keys, "//conf", {"year", "acronym"})

    def test_keys_with_empty_attribute_sets_force_nothing(self):
        keys = parse_keys("(//book, (title, {}))")
        assert not attributes_exist(keys, "//book/title", {"id"})

    def test_accepts_at_prefixed_names(self, paper_keys):
        assert attributes_exist(paper_keys, "//book", {"@isbn"})
