"""Unit tests for key satisfaction over documents (Definition 2.1)."""

import pytest

from repro.keys.key import XMLKey, parse_key
from repro.keys.satisfaction import satisfies, satisfies_all, violations
from repro.xmlmodel.builder import document, element, text


@pytest.fixture()
def library():
    return document(
        element(
            "r",
            element(
                "book",
                {"isbn": "123"},
                element("title", text("XML")),
                element("chapter", {"number": "1"}),
                element("chapter", {"number": "2"}),
            ),
            element(
                "book",
                {"isbn": "234"},
                element("title", text("XML")),
                element("chapter", {"number": "1"}),
            ),
        )
    )


class TestAbsoluteKeys:
    def test_satisfied_absolute_key(self, library):
        assert satisfies(library, parse_key("(., (//book, {@isbn}))"))

    def test_duplicate_values_violate(self, library):
        # Titles are not unique: using the title text would not work, but an
        # attribute-based key on equal values must be reported.
        tree = document(
            element(
                "r",
                element("book", {"isbn": "1"}),
                element("book", {"isbn": "1"}),
            )
        )
        key = parse_key("(., (//book, {@isbn}))")
        found = violations(tree, key)
        assert len(found) == 1
        assert found[0].kind == "duplicate-value"
        assert not satisfies(tree, key)

    def test_missing_attribute_violates(self, library):
        tree = document(element("r", element("book", {"isbn": "1"}), element("book")))
        found = violations(tree, parse_key("(., (//book, {@isbn}))"))
        assert [v.kind for v in found] == ["missing-attribute"]

    def test_empty_target_set_is_satisfied(self, library):
        assert satisfies(library, parse_key("(., (//magazine, {@id}))"))

    def test_multi_attribute_key(self):
        tree = document(
            element(
                "r",
                element("conf", {"acr": "ICDE", "year": "2003"}),
                element("conf", {"acr": "ICDE", "year": "2004"}),
                element("conf", {"acr": "VLDB", "year": "2003"}),
            )
        )
        assert satisfies(tree, parse_key("(., (//conf, {@acr, @year}))"))
        assert not satisfies(tree, parse_key("(., (//conf, {@acr}))"))


class TestRelativeKeys:
    def test_relative_key_holds_per_context(self, library):
        # chapter numbers repeat across books but not within a book.
        assert satisfies(library, parse_key("(//book, (chapter, {@number}))"))
        assert not satisfies(library, parse_key("(., (//book/chapter, {@number}))"))

    def test_relative_key_violated_within_one_context(self):
        tree = document(
            element(
                "r",
                element(
                    "book",
                    {"isbn": "1"},
                    element("chapter", {"number": "1"}),
                    element("chapter", {"number": "1"}),
                ),
            )
        )
        key = parse_key("(//book, (chapter, {@number}))")
        found = violations(tree, key)
        assert len(found) == 1
        assert found[0].kind == "duplicate-value"

    def test_violation_reports_context_node(self):
        tree = document(
            element(
                "r",
                element("book", {"isbn": "1"}, element("chapter", {"number": "1"})),
                element(
                    "book",
                    {"isbn": "2"},
                    element("chapter", {"number": "7"}),
                    element("chapter", {"number": "7"}),
                ),
            )
        )
        found = violations(tree, parse_key("(//book, (chapter, {@number}))"))
        assert len(found) == 1
        violating_context = tree.node(found[0].context_node_id)
        assert violating_context.attribute_value("isbn") == "2"


class TestEmptyAttributeKeys:
    def test_at_most_one_constraint_satisfied(self, library):
        assert satisfies(library, parse_key("(//book, (title, {}))"))

    def test_at_most_one_constraint_violated(self):
        tree = document(
            element("r", element("book", element("title", text("A")), element("title", text("B"))))
        )
        found = violations(tree, parse_key("(//book, (title, {}))"))
        assert len(found) == 1
        assert found[0].kind == "duplicate-value"

    def test_attribute_target_with_empty_key_paths(self, library):
        # An element has at most one @isbn attribute, so this always holds.
        assert satisfies(library, XMLKey("//book", "@isbn", ()))


class TestHelpers:
    def test_satisfies_all(self, library):
        keys = [
            parse_key("(., (//book, {@isbn}))"),
            parse_key("(//book, (chapter, {@number}))"),
            parse_key("(//book, (title, {}))"),
        ]
        assert satisfies_all(library, keys)
        keys.append(parse_key("(., (//book/chapter, {@number}))"))
        assert not satisfies_all(library, keys)

    def test_paper_document_satisfies_paper_keys(self, figure1, paper_keys):
        assert satisfies_all(figure1, paper_keys)

    def test_violation_str_is_informative(self):
        tree = document(element("r", element("b", {"k": "1"}), element("b", {"k": "1"})))
        found = violations(tree, parse_key("(., (//b, {@k}))"))
        assert "duplicate-value" in str(found[0])
