"""Round-tripping keys through the XML-Schema-style notation."""

import pytest

from repro.keys.key import parse_key
from repro.keys.xmlschema import key_to_schema, keys_to_schema, schema_to_keys
from repro.transform.validate import UnsupportedFeature


class TestRendering:
    def test_absolute_key_with_attribute(self):
        rendered = key_to_schema(parse_key("K1 = (., (//book, {@isbn}))"))
        assert "<xs:key" in rendered
        assert 'xpath=".//book"' in rendered
        assert '<xs:field xpath="@isbn"/>' in rendered
        assert 'name="K1"' in rendered

    def test_relative_key_records_context(self):
        rendered = key_to_schema(parse_key("K2 = (//book, (chapter, {@number}))"))
        assert ".//book :: chapter" in rendered

    def test_empty_attribute_set_becomes_unique(self):
        rendered = key_to_schema(parse_key("K3 = (//book, (title, {}))"))
        assert "<xs:unique" in rendered
        assert '<xs:field xpath="."/>' in rendered

    def test_multi_attribute_key(self):
        rendered = key_to_schema(parse_key("(., (//conf, {@acr, @year}))"))
        assert rendered.count("<xs:field") == 2

    def test_keys_to_schema_wraps_all(self, paper_keys):
        block = keys_to_schema(paper_keys)
        assert block.count("<xs:key") + block.count("<xs:unique") == len(paper_keys)


class TestParsing:
    def test_round_trip_paper_keys(self, paper_keys):
        block = keys_to_schema(paper_keys)
        recovered = schema_to_keys(block)
        assert recovered == list(paper_keys)
        assert [key.name for key in recovered] == [key.name for key in paper_keys]

    def test_parse_plain_absolute_key(self):
        source = """
        <xs:key name="bookKey">
          <xs:selector xpath=".//book"/>
          <xs:field xpath="@isbn"/>
        </xs:key>
        """
        keys = schema_to_keys(source)
        assert len(keys) == 1
        assert keys[0] == parse_key("(., (//book, {@isbn}))")

    def test_keyref_rejected(self):
        source = """
        <xs:keyref name="fk" refer="bookKey">
          <xs:selector xpath=".//chapter"/>
          <xs:field xpath="@inBook"/>
        </xs:keyref>
        """
        with pytest.raises(UnsupportedFeature):
            schema_to_keys(source)

    def test_element_fields_rejected(self):
        source = """
        <xs:key name="bad">
          <xs:selector xpath=".//book"/>
          <xs:field xpath="title"/>
        </xs:key>
        """
        with pytest.raises(UnsupportedFeature):
            schema_to_keys(source)

    def test_missing_selector_rejected(self):
        source = '<xs:key name="broken"><xs:field xpath="@a"/></xs:key>'
        with pytest.raises(ValueError):
            schema_to_keys(source)

    def test_recovered_keys_drive_propagation(self, paper_keys, sigma):
        from repro.core import check_propagation

        recovered = schema_to_keys(keys_to_schema(paper_keys))
        assert check_propagation(recovered, sigma.rule("book"), "isbn -> contact").holds
