"""Unit tests for the incremental constraint plane (engine + delta store)."""

import pytest

from repro.incremental import (
    DeltaStore,
    IncrementalEngine,
    delete,
    insert,
    replace,
)
from repro.keys import parse_keys
from repro.keys.stream import stream_violations
from repro.relational.fd import FunctionalDependency as FD
from repro.relational.sql import encode_row
from repro.storage import (
    BulkLoader,
    IntegrityViolation,
    SQLiteBackend,
    StorageError,
    compile_ddl,
)
from repro.transform import parse_transformation
from repro.transform.stream import stream_evaluate_transformation

TRANSFORM_TEXT = """
table chapter
  var ya <- xr : //book
  var y1 <- ya : @isbn
  var yc <- ya : chapter
  var y2 <- yc : @number
  var y3 <- yc : name
  field inBook = value(y1)
  field number = value(y2)
  field name   = value(y3)
"""

KEYS_TEXT = "K1 = (//book, (chapter, {number}))\nK2 = (/, (//book, {isbn}))\n"

DOC = (
    '<bib><book isbn="111"><chapter number="1"><name>A</name></chapter>'
    '<chapter number="2"><name>B</name></chapter></book>'
    '<book isbn="222"><chapter number="1"><name>C</name></chapter></book></bib>'
)

BOOK_333 = '<book isbn="333"><chapter number="9"><name>Z</name></chapter></book>'
BOOK_DUP_CHAPTER = (
    '<book isbn="444"><chapter number="5"><name>x</name></chapter>'
    '<chapter number="5"><name>y</name></chapter></book>'
)


@pytest.fixture()
def transformation():
    return parse_transformation(TRANSFORM_TEXT)


@pytest.fixture()
def keys():
    return parse_keys(KEYS_TEXT)


@pytest.fixture()
def engine(transformation, keys):
    eng = IncrementalEngine(transformation, keys)
    eng.load(DOC)
    return eng


def fingerprint(found):
    return [
        (v.key.text, v.context_node_id, v.kind, v.node_ids, v.detail) for v in found
    ]


def assert_matches_batch(eng, transformation, keys):
    """The engine's answers must equal a from-scratch run on its text."""
    text = eng.text()
    assert fingerprint(eng.violations()) == fingerprint(stream_violations(text, keys))
    fresh = stream_evaluate_transformation(transformation, text)
    instances = eng.instances()
    assert set(instances) == set(fresh)
    for table in fresh:
        assert instances[table].rows == fresh[table].rows


class TestConstruction:
    def test_needs_rules_or_keys(self):
        with pytest.raises(ValueError, match="transformation, keys, or both"):
            IncrementalEngine()

    def test_root_bound_rule_rejected(self):
        rules = parse_transformation(
            """
            table whole
              var xa <- xr : //
              var x1 <- xa : title
              field title = value(x1)
            """
        )
        with pytest.raises(ValueError, match="anchors at the document root"):
            IncrementalEngine(rules)

    def test_queries_require_load(self, transformation):
        eng = IncrementalEngine(transformation)
        with pytest.raises(ValueError, match="no document loaded"):
            eng.violations()
        with pytest.raises(ValueError, match="no document loaded"):
            eng.apply(delete(0))


class TestLoading:
    def test_load_counts_subtrees(self, engine):
        assert engine.subtree_count == 2
        assert engine.text() == DOC

    def test_childless_root_rejected(self, transformation):
        eng = IncrementalEngine(transformation)
        with pytest.raises(ValueError, match="cannot be incrementally indexed"):
            eng.load("<bib>only text</bib>")

    def test_malformed_document_rejected(self, transformation):
        eng = IncrementalEngine(transformation)
        with pytest.raises(ValueError, match="cannot be incrementally indexed"):
            eng.load("<bib><book></bib>")

    def test_reload_replaces_state(self, engine, transformation, keys):
        engine.load('<bib><book isbn="9"><chapter number="1"><name>N</name></chapter></book></bib>')
        assert engine.subtree_count == 1
        assert_matches_batch(engine, transformation, keys)


class TestDeltas:
    def test_insert_append_and_prepend(self, engine, transformation, keys):
        report = engine.apply(insert(2, BOOK_333))
        assert report.subtrees == 3
        assert engine.fragment(2) == BOOK_333
        engine.apply(insert(0, '<book isbn="000"><chapter number="0"><name>0</name></chapter></book>'))
        assert engine.subtree_count == 4
        assert_matches_batch(engine, transformation, keys)

    def test_delete_takes_riding_text(self, transformation, keys):
        doc = "<bib>lead<book isbn='1'><chapter number='1'><name>A</name></chapter></book>tail<book isbn='2'><chapter number='2'><name>B</name></chapter></book>end</bib>"
        eng = IncrementalEngine(transformation, keys)
        eng.load(doc)
        # Slice boundaries sit at a child's '<', so "tail" rides with
        # slice 0 and "end" with slice 1: deleting slice 1 removes "end" too.
        eng.apply(delete(1))
        assert eng.text() == "<bib>lead<book isbn='1'><chapter number='1'><name>A</name></chapter></book>tail</bib>"
        assert_matches_batch(eng, transformation, keys)

    def test_replace_reports_violation_diff(self, engine):
        report = engine.apply(replace(1, BOOK_DUP_CHAPTER))
        assert len(report.appeared) == 1
        assert report.appeared[0].kind == "duplicate-value"
        assert not report.disappeared
        assert report.violations == 1
        # Repairing the subtree makes the violation disappear again.
        report = engine.apply(replace(1, BOOK_333))
        assert len(report.disappeared) == 1
        assert not report.appeared
        assert report.violations == 0

    def test_delete_to_empty_and_refill(self, engine, transformation, keys):
        engine.apply(delete(0))
        engine.apply(delete(0))
        assert engine.subtree_count == 0
        # The shredded table collapses to the paper's all-NULL row.
        rows = engine.instances()["chapter"].rows
        assert len(rows) == 1
        engine.apply(insert(0, BOOK_333))
        assert_matches_batch(engine, transformation, keys)

    def test_positions_are_checked(self, engine):
        with pytest.raises(IndexError):
            engine.apply(delete(2))
        with pytest.raises(IndexError):
            engine.apply(insert(3, BOOK_333))
        with pytest.raises(IndexError):
            engine.apply(replace(-1, BOOK_333))
        with pytest.raises(ValueError, match="unknown delta kind"):
            engine.apply(type(delete(0))("frobnicate", 0))

    def test_fragment_required(self, engine):
        with pytest.raises(ValueError, match="needs a fragment"):
            engine.apply(type(delete(0))("insert", 0, None))


class TestFragmentValidation:
    def test_malformed_fragment_leaves_engine_untouched(self, engine, transformation, keys):
        before = engine.text()
        with pytest.raises(ValueError):
            engine.apply(insert(0, "<book><unclosed></book>"))
        assert engine.text() == before
        assert_matches_batch(engine, transformation, keys)

    def test_two_elements_rejected(self, engine):
        with pytest.raises(ValueError, match="exactly one top-level element"):
            engine.apply(insert(0, "<a/><b/>"))

    def test_leading_text_rejected(self, engine):
        with pytest.raises(ValueError, match="must start at its element"):
            engine.apply(insert(0, "hello<a/>"))

    def test_trailing_text_allowed(self, engine, transformation, keys):
        engine.apply(insert(2, BOOK_333 + "\n  "))
        assert engine.text().endswith(BOOK_333 + "\n  </bib>")
        assert_matches_batch(engine, transformation, keys)


class TestKeysOnlyAndRulesOnly:
    def test_keys_only(self, keys):
        eng = IncrementalEngine(keys=keys)
        eng.load(DOC)
        assert eng.violations() == []
        assert eng.instances() == {}
        report = eng.apply(insert(2, '<book isbn="111"><chapter number="7"><name>D</name></chapter></book>'))
        assert len(report.appeared) == 1  # duplicate isbn under K2

    def test_rules_only(self, transformation):
        eng = IncrementalEngine(transformation)
        eng.load(DOC)
        assert eng.violations() == []
        assert len(eng.instances()["chapter"].rows) == 3


def _store(mode="strict", deduplicate=True):
    rule_schema = parse_transformation(TRANSFORM_TEXT).rule("chapter").schema()
    cover = [FD({"inBook", "number"}, {"name"})]
    ddl = compile_ddl(rule_schema, cover, mode=mode)
    backend = SQLiteBackend()
    return backend, DeltaStore(BulkLoader(backend, ddl, deduplicate=deduplicate))


def _db_rows(backend):
    return sorted(backend.query('SELECT * FROM "chapter"'))


def _engine_rows(eng):
    instance = eng.instances()["chapter"]
    return sorted(tuple(encode_row(instance.schema, row)) for row in instance.rows)


class TestDeltaStore:
    def test_provenance_plans_rejected(self):
        rule_schema = parse_transformation(TRANSFORM_TEXT).rule("chapter").schema()
        ddl = compile_ddl(rule_schema, [], mode="log", provenance_column="_doc")
        backend = SQLiteBackend()
        with pytest.raises(ValueError, match="provenance"):
            DeltaStore(BulkLoader(backend, ddl))
        backend.close()

    def test_deduplicate_mismatch_rejected(self, transformation, keys):
        backend, store = _store(deduplicate=False)
        eng = IncrementalEngine(transformation, keys)
        eng.load(DOC)
        with pytest.raises(ValueError, match="deduplicate"):
            eng.attach_store(store)
        backend.close()

    def test_initial_load_and_sync(self, transformation, keys):
        backend, store = _store()
        eng = IncrementalEngine(transformation, keys)
        eng.load(DOC)
        counts = eng.attach_store(store)
        assert counts == {"chapter": 3}
        assert _db_rows(backend) == _engine_rows(eng)
        report = eng.apply(replace(0, BOOK_333))
        assert report.rows_inserted == {"chapter": 1}
        assert report.rows_deleted == {"chapter": 2}
        assert _db_rows(backend) == _engine_rows(eng)
        eng.apply(insert(0, '<book isbn="000"><chapter number="0"><name>0</name></chapter></book>'))
        eng.apply(delete(1))
        assert _db_rows(backend) == _engine_rows(eng)
        backend.close()

    def test_null_row_transitions(self, transformation):
        backend, store = _store(mode="log")
        eng = IncrementalEngine(transformation)
        eng.load(DOC)
        eng.attach_store(store)
        eng.apply(delete(0))
        report = eng.apply(delete(0))
        # Last real rows leave, the all-NULL marker row arrives.
        assert _db_rows(backend) == [(None, None, None)]
        assert _db_rows(backend) == _engine_rows(eng)
        report = eng.apply(insert(0, BOOK_333))
        assert report.rows_deleted == {"chapter": 1}  # the NULL row retracts
        assert _db_rows(backend) == _engine_rows(eng)
        backend.close()

    def test_strict_rejection_is_atomic(self, transformation, keys):
        backend, store = _store()
        eng = IncrementalEngine(transformation, keys)
        eng.load(DOC)
        eng.attach_store(store)
        before_db, before_text = _db_rows(backend), eng.text()
        clashing = '<book isbn="111"><chapter number="1"><name>Clash</name></chapter></book>'
        with pytest.raises(IntegrityViolation):
            eng.apply(insert(2, clashing))
        assert _db_rows(backend) == before_db
        assert eng.text() == before_text
        # The engine stays usable and consistent after the rejection.
        eng.apply(insert(2, BOOK_333))
        assert _db_rows(backend) == _engine_rows(eng)
        backend.close()

    def test_reattaching_to_a_populated_database_resets_it(
        self, transformation, keys, tmp_path
    ):
        # A second session against the same database file must not trip
        # the constraints on the first session's rows: the store owns its
        # tables and re-initializes them from the engine's state.
        rule_schema = parse_transformation(TRANSFORM_TEXT).rule("chapter").schema()
        cover = [FD({"inBook", "number"}, {"name"})]
        ddl = compile_ddl(rule_schema, cover, mode="strict", if_not_exists=True)
        path = str(tmp_path / "books.db")
        for round_trip in range(2):
            backend = SQLiteBackend(path)
            eng = IncrementalEngine(transformation, keys)
            eng.load(DOC)
            counts = eng.attach_store(DeltaStore(BulkLoader(backend, ddl)))
            assert counts == {"chapter": 3}
            eng.apply(insert(2, BOOK_333))
            assert _db_rows(backend) == _engine_rows(eng)
            backend.close()

    def test_tampered_database_detected(self, transformation):
        backend, store = _store(mode="log")
        eng = IncrementalEngine(transformation)
        eng.load(DOC)
        eng.attach_store(store)
        # Remove a row behind the engine's back; retracting it must fail
        # loudly instead of silently diverging.
        backend.execute('DELETE FROM "chapter" WHERE "name" = ?', ("C",))
        before_text = eng.text()
        with pytest.raises(StorageError, match="no longer matches the engine"):
            eng.apply(delete(1))
        assert eng.text() == before_text
        backend.close()
