"""End-to-end tests of the ``apply-delta`` CLI command."""

import io

import pytest

from repro.cli import main

TRANSFORM_TEXT = """
table chapter
  var ya <- xr : //book
  var y1 <- ya : @isbn
  var yc <- ya : chapter
  var y2 <- yc : @number
  var y3 <- yc : name
  field inBook = value(y1)
  field number = value(y2)
  field name   = value(y3)
"""

KEYS_TEXT = """
K1 = (., (//book, {@isbn}))
K2 = (//book, (chapter, {@number}))
K4 = (//book/chapter, (name, {}))
"""

DOC = (
    '<bib><book isbn="111"><chapter number="1"><name>A</name></chapter></book>'
    '<book isbn="222"><chapter number="1"><name>C</name></chapter></book></bib>'
)

BOOK_333 = '<book isbn="333"><chapter number="9"><name>Z</name></chapter></book>'


@pytest.fixture()
def workspace(tmp_path):
    transform_file = tmp_path / "rules.dsl"
    transform_file.write_text(TRANSFORM_TEXT)
    keys_file = tmp_path / "keys.txt"
    keys_file.write_text(KEYS_TEXT)
    xml_file = tmp_path / "doc.xml"
    xml_file.write_text(DOC)
    return {
        "transform": str(transform_file),
        "keys": str(keys_file),
        "xml": str(xml_file),
        "db": str(tmp_path / "out.db"),
        "tmp": tmp_path,
    }


class TestBatchOps:
    def test_clean_sequence_exits_zero(self, workspace, capsys):
        code = main(
            [
                "apply-delta",
                "--xml", workspace["xml"],
                "--transform", workspace["transform"],
                "--keys", workspace["keys"],
                "--op", f"insert 2 {BOOK_333}",
                "--op", "delete 0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "indexed" in out and "2 top-level subtree(s)" in out
        assert "insert 2: 3 subtree(s)" in out
        assert "delete 0: 2 subtree(s)" in out

    def test_violating_delta_exits_one(self, workspace, capsys):
        clashing = '<book isbn="111"><chapter number="7"><name>D</name></chapter></book>'
        code = main(
            [
                "apply-delta",
                "--xml", workspace["xml"],
                "--keys", workspace["keys"],
                "--op", f"insert 2 {clashing}",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "+1/-0 violation(s)" in out

    def test_fragment_file_operand(self, workspace, capsys):
        fragment_file = workspace["tmp"] / "book.xml"
        fragment_file.write_text(BOOK_333)
        code = main(
            [
                "apply-delta",
                "--xml", workspace["xml"],
                "--keys", workspace["keys"],
                "--op", f"replace 0 {fragment_file}",
            ]
        )
        assert code == 0
        assert "replace 0: 2 subtree(s)" in capsys.readouterr().out

    def test_write_back(self, workspace):
        code = main(
            [
                "apply-delta",
                "--xml", workspace["xml"],
                "--transform", workspace["transform"],
                "--op", "delete 1",
                "--write-back",
            ]
        )
        assert code == 0
        written = (workspace["tmp"] / "doc.xml").read_text()
        assert written == (
            '<bib><book isbn="111"><chapter number="1"><name>A</name></chapter></book></bib>'
        )

    def test_db_kept_in_step(self, workspace, capsys):
        code = main(
            [
                "apply-delta",
                "--xml", workspace["xml"],
                "--transform", workspace["transform"],
                "--keys", workspace["keys"],
                "--db", workspace["db"],
                "--op", f"insert 2 {BOOK_333}",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "chapter: 2 rows" in out
        assert "chapter: +1/-0 row(s)" in out
        from repro.storage import SQLiteBackend

        backend = SQLiteBackend(workspace["db"])
        try:
            assert backend.row_count("chapter") == 3
        finally:
            backend.close()

    def test_strict_rejection_exits_one_and_skips_write_back(self, workspace, capsys):
        # Same (inBook, number) as an existing row with a different name:
        # violates the propagated FD cover, so strict mode rejects it.
        original = (workspace["tmp"] / "doc.xml").read_text()
        clashing = '<book isbn="111"><chapter number="1"><name>Clash</name></chapter></book>'
        code = main(
            [
                "apply-delta",
                "--xml", workspace["xml"],
                "--transform", workspace["transform"],
                "--keys", workspace["keys"],
                "--db", workspace["db"],
                "--op", f"insert 2 {clashing}",
                "--write-back",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "delta rejected" in out
        assert (workspace["tmp"] / "doc.xml").read_text() == original


class TestUsageErrors:
    def test_no_constraints_is_usage_error(self, workspace, capsys):
        code = main(["apply-delta", "--xml", workspace["xml"], "--op", "delete 0"])
        assert code == 2
        assert "provide --transform" in capsys.readouterr().err

    def test_db_without_transform_is_usage_error(self, workspace, capsys):
        code = main(
            [
                "apply-delta",
                "--xml", workspace["xml"],
                "--keys", workspace["keys"],
                "--db", workspace["db"],
                "--op", "delete 0",
            ]
        )
        assert code == 2
        assert "--db needs --transform" in capsys.readouterr().err

    def test_no_op_and_no_repl_is_usage_error(self, workspace, capsys):
        code = main(
            ["apply-delta", "--xml", workspace["xml"], "--keys", workspace["keys"]]
        )
        assert code == 2
        assert "at least one --op" in capsys.readouterr().err

    def test_bad_position_exits_two(self, workspace, capsys):
        code = main(
            [
                "apply-delta",
                "--xml", workspace["xml"],
                "--keys", workspace["keys"],
                "--op", "delete 9",
            ]
        )
        assert code == 2

    def test_malformed_op_exits_two(self, workspace):
        code = main(
            [
                "apply-delta",
                "--xml", workspace["xml"],
                "--keys", workspace["keys"],
                "--op", "frobnicate 0",
            ]
        )
        assert code == 2

    def test_missing_xml_exits_two(self, workspace):
        code = main(
            [
                "apply-delta",
                "--xml", str(workspace["tmp"] / "missing.xml"),
                "--keys", workspace["keys"],
                "--op", "delete 0",
            ]
        )
        assert code == 2


class TestRepl:
    def _run(self, workspace, script, monkeypatch, extra=()):
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        return main(
            [
                "apply-delta",
                "--xml", workspace["xml"],
                "--transform", workspace["transform"],
                "--keys", workspace["keys"],
                "--repl",
                *extra,
            ]
        )

    def test_queries_and_deltas(self, workspace, capsys, monkeypatch):
        script = (
            "violations\n"
            "tables\n"
            f"insert 2 {BOOK_333}\n"
            "# a comment line\n"
            "\n"
            "text\n"
            "quit\n"
        )
        code = self._run(workspace, script, monkeypatch)
        out = capsys.readouterr().out
        assert code == 0
        assert "0 violation(s)" in out
        assert "chapter: 2 rows" in out
        assert "insert 2: 3 subtree(s)" in out
        assert BOOK_333 in out  # the `text` query echoes the document

    def test_errors_do_not_end_session(self, workspace, capsys, monkeypatch):
        script = "delete 42\nbogus op\ndelete 0\nexit\n"
        code = self._run(workspace, script, monkeypatch)
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("error:") == 2
        assert "delete 0: 1 subtree(s)" in out

    def test_rejected_last_delta_exits_one(self, workspace, capsys, monkeypatch):
        clashing = '<book isbn="111"><chapter number="1"><name>Clash</name></chapter></book>'
        script = f"insert 2 {clashing}\nquit\n"
        code = self._run(
            workspace, script, monkeypatch, extra=("--db", workspace["db"])
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "delta rejected" in out

    def test_eof_ends_session(self, workspace, capsys, monkeypatch):
        code = self._run(workspace, "violations\n", monkeypatch)
        assert code == 0
        assert "0 violation(s)" in capsys.readouterr().out
