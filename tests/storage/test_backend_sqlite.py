"""Unit tests for the backend protocol and its SQLite implementation."""

import pytest

from repro.storage import IntegrityViolation, SQLiteBackend, StorageError


@pytest.fixture()
def backend():
    with SQLiteBackend() as b:
        b.execute('CREATE TABLE "t" ("a" TEXT, "b" TEXT, PRIMARY KEY ("a"))')
        yield b


class TestExecution:
    def test_execute_and_query(self, backend):
        backend.execute('INSERT INTO "t" VALUES (?, ?)', ("1", "x"))
        assert backend.query('SELECT "a", "b" FROM "t"') == [("1", "x")]

    def test_executemany(self, backend):
        backend.executemany(
            'INSERT INTO "t" VALUES (?, ?)', [("1", "x"), ("2", "y")]
        )
        assert backend.row_count("t") == 2

    def test_integrity_violation_is_translated(self, backend):
        backend.execute('INSERT INTO "t" VALUES (?, ?)', ("1", "x"))
        with pytest.raises(IntegrityViolation):
            backend.execute('INSERT INTO "t" VALUES (?, ?)', ("1", "y"))

    def test_other_errors_become_storage_errors(self, backend):
        with pytest.raises(StorageError):
            backend.execute("SELECT * FROM missing_table")

    def test_introspection(self, backend):
        assert backend.table_names() == ["t"]
        assert backend.column_names("t") == ["a", "b"]


class TestTransactions:
    def test_rollback_on_error(self, backend):
        with pytest.raises(RuntimeError):
            with backend.transaction():
                backend.execute('INSERT INTO "t" VALUES (?, ?)', ("1", "x"))
                raise RuntimeError("boom")
        assert backend.row_count("t") == 0

    def test_commit_on_success(self, backend):
        with backend.transaction():
            backend.execute('INSERT INTO "t" VALUES (?, ?)', ("1", "x"))
        assert backend.row_count("t") == 1

    def test_savepoints_nest(self, backend):
        backend.begin()
        backend.execute('INSERT INTO "t" VALUES (?, ?)', ("1", "x"))
        with backend.savepoint("outer"):
            backend.execute('INSERT INTO "t" VALUES (?, ?)', ("2", "y"))
            with pytest.raises(IntegrityViolation):
                with backend.savepoint("inner"):
                    backend.execute('INSERT INTO "t" VALUES (?, ?)', ("2", "z"))
            # The inner savepoint rolled back; the outer insert survives.
            assert backend.row_count("t") == 2
        backend.commit()
        assert backend.row_count("t") == 2

    def test_savepoint_rollback_discards_partial_work(self, backend):
        with pytest.raises(RuntimeError):
            with backend.savepoint("doc"):
                backend.execute('INSERT INTO "t" VALUES (?, ?)', ("1", "x"))
                raise RuntimeError("reject the document")
        assert backend.row_count("t") == 0


class TestFileDatabases:
    def test_persists_to_disk(self, tmp_path):
        path = str(tmp_path / "out.db")
        with SQLiteBackend(path) as b:
            b.execute('CREATE TABLE "t" ("a" TEXT)')
            b.execute('INSERT INTO "t" VALUES (?)', ("1",))
        with SQLiteBackend(path) as again:
            assert again.row_count("t") == 1

    def test_fast_mode_opens(self, tmp_path):
        with SQLiteBackend(str(tmp_path / "fast.db"), fast=True) as b:
            b.execute('CREATE TABLE "t" ("a" TEXT)')
            assert b.table_names() == ["t"]
