"""Fault injection and the chaos tests it enables.

The headline claims under test: a fault at *any* data statement inside a
document load leaves the database and the loader's counters exactly at
the pre-document state, on every backend, and the next document loads
cleanly afterwards.
"""

import pytest

from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.storage import (
    BulkLoader,
    FaultInjectingBackend,
    FaultPlan,
    SQLiteBackend,
    StorageError,
    compile_ddl,
    fake_postgres_backend,
)
from repro.storage.backend import TransientError
from repro.transform.rule import TableRule

RULES = [
    TableRule(
        "t",
        fields={"a": "xa", "b": "xb"},
        mappings=[("xi", "xr", "i"), ("xa", "xi", "a"), ("xb", "xi", "b")],
    )
]

SCHEMA = DatabaseSchema([RelationSchema("t", ["a", "b"], keys=[frozenset({"a"})])])


def _doc(*pairs):
    items = "".join(f"<i><a>{a}</a><b>{b}</b></i>" for a, b in pairs)
    return f"<r>{items}</r>"


def _loader(backend, mode="strict", batch_size=2):
    ddl = compile_ddl(
        SCHEMA, mode=mode, provenance_column="_doc",
        ordinal_column=backend.ordinal_column, if_not_exists=True,
    )
    return BulkLoader(backend, ddl, batch_size=batch_size)


class TestFaultPlan:
    def test_failing_builds_default_transient_errors(self):
        plan = FaultPlan.failing(2, 5)
        assert isinstance(plan.exception_for(2), TransientError)

    def test_custom_exception_instances_and_factories(self):
        boom = StorageError("boom")
        plan = FaultPlan(fail_at={0: boom, 1: lambda: StorageError("made")})
        assert plan.exception_for(0) is boom
        assert str(plan.exception_for(1)) == "made"


class TestFaultInjectingBackend:
    @pytest.fixture()
    def inner(self):
        b = SQLiteBackend()
        b.execute('CREATE TABLE "t" ("a" TEXT)')
        return b

    def test_fails_exactly_the_nth_data_statement(self, inner):
        backend = FaultInjectingBackend(inner, FaultPlan.failing(1))
        backend.execute('INSERT INTO "t" VALUES (?)', ("0",))
        with pytest.raises(TransientError):
            backend.execute('INSERT INTO "t" VALUES (?)', ("1",))
        backend.execute('INSERT INTO "t" VALUES (?)', ("2",))
        assert [e.action for e in backend.history] == ["ok", "fail", "ok"]
        assert backend.query('SELECT COUNT(*) FROM "t"') == [(2,)]

    def test_control_statements_are_never_counted_or_faulted(self, inner):
        backend = FaultInjectingBackend(inner, FaultPlan.failing(0))
        backend.begin()
        backend.execute("SAVEPOINT sp")
        backend.execute("RELEASE SAVEPOINT sp")
        backend.commit()
        # The first *data* statement still carries ordinal 0.
        with pytest.raises(TransientError):
            backend.execute('INSERT INTO "t" VALUES (?)', ("0",))

    def test_executescript_is_setup_not_chaos(self, inner):
        backend = FaultInjectingBackend(inner, FaultPlan.failing(0))
        backend.executescript('CREATE TABLE "u" ("x" TEXT);')
        assert backend.statements == 0

    def test_dropped_statements_vanish_silently(self, inner):
        backend = FaultInjectingBackend(inner, FaultPlan(drop_at={1}))
        backend.execute('INSERT INTO "t" VALUES (?)', ("0",))
        cursor = backend.execute('INSERT INTO "t" VALUES (?)', ("1",))
        assert cursor.fetchall() == []  # the null cursor
        backend.execute('INSERT INTO "t" VALUES (?)', ("2",))
        assert backend.query('SELECT COUNT(*) FROM "t"') == [(2,)]

    def test_delay_uses_injected_sleep(self, inner):
        slept = []
        backend = FaultInjectingBackend(
            inner, FaultPlan(delay_at={0: 1.5}), sleep=slept.append
        )
        backend.execute('INSERT INTO "t" VALUES (?)', ("0",))
        assert slept == [1.5]

    def test_executemany_counts_one_ordinal(self, inner):
        backend = FaultInjectingBackend(inner, FaultPlan.failing(1))
        backend.executemany('INSERT INTO "t" VALUES (?)', [("0",), ("1",)])
        with pytest.raises(TransientError):
            backend.executemany('INSERT INTO "t" VALUES (?)', [("2",)])


@pytest.mark.parametrize("make_backend", [SQLiteBackend, fake_postgres_backend])
class TestChaosAtomicity:
    """A mid-document fault leaves DB and counters at pre-document state."""

    def _fault_everywhere(self, make_backend, mode):
        """Load doc1 clean, then replay doc2 with a fault at every data
        ordinal it would otherwise produce; each replay must leave the
        database exactly as after doc1."""
        # Dry run counts doc2's data statements.
        inner = make_backend()
        loader = _loader(inner, mode=mode)
        loader.create_schema()
        loader.load_document(_doc(("1", "x")), RULES, document="d1")
        probe = FaultInjectingBackend(inner, FaultPlan())
        _loader(probe, mode=mode).load_document(
            _doc(("2", "y"), ("3", "z"), ("4", "w")), RULES, document="d2"
        )
        return probe.statements

    @pytest.mark.parametrize("mode", ["strict", "log"])
    def test_fault_at_every_ordinal_rolls_back_cleanly(self, make_backend, mode):
        total = self._fault_everywhere(make_backend, mode)
        assert total >= 1
        for ordinal in range(total):
            backend = make_backend()
            loader = _loader(backend, mode=mode)
            loader.create_schema()
            report = loader.load_corpus([("d1", _doc(("1", "x")))], RULES)
            before = backend.query('SELECT "a", "b" FROM "t"')
            faulty = FaultInjectingBackend(backend, FaultPlan.failing(ordinal))
            chaos_loader = _loader(faulty, mode=mode)
            with pytest.raises(TransientError):
                chaos_loader.load_document(
                    _doc(("2", "y"), ("3", "z"), ("4", "w")), RULES, document="d2"
                )
            # Database back at the pre-document state...
            assert backend.query('SELECT "a", "b" FROM "t"') == before
            # ...and the clean loader's counters never saw the document.
            assert report.rows == {"t": 1}
            assert list(report.documents) == ["d1"]
            # The plane recovers: the same document loads cleanly after.
            counts = loader.load_document(
                _doc(("2", "y"), ("3", "z"), ("4", "w")), RULES, document="d2"
            )
            assert counts == {"t": 3}
            backend.close()

    def test_clean_wrapper_is_transparent(self, make_backend):
        backend = make_backend()
        faulty = FaultInjectingBackend(backend, FaultPlan())
        loader = _loader(faulty)
        loader.create_schema()
        counts = loader.load_document(_doc(("1", "x"), ("2", "y")), RULES)
        assert counts == {"t": 2}
        assert all(event.action == "ok" for event in faulty.history)
        backend.close()
