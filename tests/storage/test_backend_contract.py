"""The backend conformance suite: one contract, every engine.

Each test runs against SQLite, the in-process fake-PostgreSQL backend,
and — when ``REPRO_PG_DSN`` points at a live server — real PostgreSQL.
The contract is what :class:`~repro.storage.loader.BulkLoader` and
:class:`~repro.storage.verify.SQLVerifier` rely on: placeholder-shaped
parameter binding, savepoint atomicity, error translation into the
storage taxonomy, NULL round-tripping, and the optional COPY fast path.
"""

import os

import pytest

from repro.storage import (
    IntegrityViolation,
    PostgresBackend,
    SQLiteBackend,
    StorageError,
    fake_postgres_backend,
)

PG_DSN = os.environ.get("REPRO_PG_DSN")

BACKENDS = ["sqlite", "fake-postgres"] + (["postgres"] if PG_DSN else [])

TABLE = "contract_t"


def _open(kind):
    if kind == "sqlite":
        return SQLiteBackend()
    if kind == "fake-postgres":
        return fake_postgres_backend()
    return PostgresBackend(dsn=PG_DSN)


@pytest.fixture(params=BACKENDS)
def backend(request):
    b = _open(request.param)
    with b.transaction():
        b.execute(f'DROP TABLE IF EXISTS "{TABLE}"')
        b.execute(f'CREATE TABLE "{TABLE}" ("a" TEXT, "b" TEXT, PRIMARY KEY ("a"))')
    try:
        yield b
    finally:
        try:
            with b.transaction():
                b.execute(f'DROP TABLE IF EXISTS "{TABLE}"')
        except StorageError:
            pass
        b.close()


def _insert(backend):
    p = backend.placeholder
    return f'INSERT INTO "{TABLE}" ("a", "b") VALUES ({p}, {p})'


class TestExecution:
    def test_execute_and_query(self, backend):
        backend.execute(_insert(backend), ("1", "x"))
        assert backend.query(f'SELECT "a", "b" FROM "{TABLE}"') == [("1", "x")]

    def test_executemany_and_row_count(self, backend):
        backend.executemany(_insert(backend), [("1", "x"), ("2", "y")])
        assert backend.row_count(TABLE) == 2

    def test_null_round_trips(self, backend):
        backend.execute(_insert(backend), ("1", None))
        assert backend.query(f'SELECT "b" FROM "{TABLE}"') == [(None,)]

    def test_introspection(self, backend):
        assert TABLE in backend.table_names()
        columns = backend.column_names(TABLE)
        assert columns[:2] == ["a", "b"] or set(["a", "b"]) <= set(columns)


class TestErrorTaxonomy:
    def test_duplicate_key_is_integrity_violation(self, backend):
        backend.execute(_insert(backend), ("1", "x"))
        with pytest.raises(IntegrityViolation):
            backend.execute(_insert(backend), ("1", "y"))

    def test_missing_table_is_storage_error_not_integrity(self, backend):
        with pytest.raises(StorageError) as info:
            with backend.transaction():
                backend.query('SELECT * FROM "contract_absent"')
        assert not isinstance(info.value, IntegrityViolation)


class TestTransactions:
    def test_transaction_commit(self, backend):
        with backend.transaction():
            backend.execute(_insert(backend), ("1", "x"))
        assert backend.row_count(TABLE) == 1

    def test_transaction_rollback_on_error(self, backend):
        with pytest.raises(RuntimeError):
            with backend.transaction():
                backend.execute(_insert(backend), ("1", "x"))
                raise RuntimeError("boom")
        assert backend.row_count(TABLE) == 0

    def test_savepoint_rolls_back_atomically(self, backend):
        backend.begin()
        backend.execute(_insert(backend), ("1", "x"))
        with pytest.raises(IntegrityViolation):
            with backend.savepoint("sp"):
                backend.execute(_insert(backend), ("2", "y"))
                backend.execute(_insert(backend), ("1", "dup"))
        # Only the savepoint's work is gone; the outer row survives.
        backend.execute(_insert(backend), ("3", "z"))
        backend.commit()
        values = sorted(row[0] for row in backend.query(f'SELECT "a" FROM "{TABLE}"'))
        assert values == ["1", "3"]

    def test_savepoints_nest(self, backend):
        backend.begin()
        with backend.savepoint("outer"):
            backend.execute(_insert(backend), ("1", "x"))
            with pytest.raises(IntegrityViolation):
                with backend.savepoint("inner"):
                    backend.execute(_insert(backend), ("1", "y"))
            backend.execute(_insert(backend), ("2", "z"))
        backend.commit()
        assert backend.row_count(TABLE) == 2


class TestCopy:
    def test_copy_rows_matches_supports_copy(self, backend):
        rows = [("1", "x"), ("2", None)]
        if backend.supports_copy:
            with backend.transaction():
                backend.copy_rows(TABLE, ["a", "b"], rows)
            assert sorted(backend.query(f'SELECT "a", "b" FROM "{TABLE}"')) == [
                ("1", "x"),
                ("2", None),
            ]
        else:
            with pytest.raises(StorageError):
                backend.copy_rows(TABLE, ["a", "b"], rows)

    def test_copy_and_executemany_store_identical_values(self, backend):
        if not backend.supports_copy:
            pytest.skip("engine has no COPY path")
        with backend.transaction():
            backend.copy_rows(TABLE, ["a", "b"], [("1", "tab\tand\nnewline")])
            backend.execute(_insert(backend), ("2", "tab\tand\nnewline"))
        values = backend.query(f'SELECT "b" FROM "{TABLE}"')
        assert values[0] == values[1]
