"""Unit tests for in-database violation checking (SQL vs in-memory)."""

import pytest

from repro.relational.instance import NULL, RelationInstance
from repro.relational.schema import RelationSchema
from repro.storage import (
    BulkLoader,
    SQLVerifier,
    SQLiteBackend,
    compile_ddl,
    conflict_groups_sql,
    conflict_witness_sql,
    null_determinant_sql,
)


def _loaded(schema, rows):
    ddl = compile_ddl(schema, mode="log")
    backend = SQLiteBackend()
    loader = BulkLoader(backend, ddl)
    loader.create_schema()
    loader.load_rows(schema.name, rows)
    return backend, ddl, RelationInstance(schema, rows)


@pytest.fixture()
def schema():
    return RelationSchema("r", ["a", "b", "c"])


class TestWitnessIdentity:
    """SQL answers must equal the in-memory checkers witness for witness."""

    def _assert_identical(self, schema, rows, lhs, rhs):
        backend, ddl, instance = _loaded(schema, rows)
        verifier = SQLVerifier(backend, ddl)
        assert verifier.fd_violations("r", lhs, rhs) == instance.fd_violations(lhs, rhs)

    def test_clean_instance(self, schema):
        rows = [
            {"a": "1", "b": "x", "c": "p"},
            {"a": "2", "b": "y", "c": "q"},
        ]
        self._assert_identical(schema, rows, {"a"}, {"b"})

    def test_value_conflicts(self, schema):
        rows = [
            {"a": "1", "b": "x", "c": "p"},
            {"a": "1", "b": "y", "c": "p"},
            {"a": "1", "b": "x", "c": "q"},
            {"a": "2", "b": "z", "c": "r"},
        ]
        self._assert_identical(schema, rows, {"a"}, {"b"})
        self._assert_identical(schema, rows, {"a"}, {"b", "c"})

    def test_null_determinant(self, schema):
        rows = [
            {"a": NULL, "b": "x", "c": "p"},
            {"a": "1", "b": NULL, "c": "p"},
            {"a": NULL, "b": NULL, "c": NULL},
        ]
        self._assert_identical(schema, rows, {"a"}, {"b"})
        self._assert_identical(schema, rows, {"a", "b"}, {"c"})

    def test_null_exemption_of_condition_two(self, schema):
        # Two rows agree on a and disagree on b, but one has a null in c:
        # the paper's condition (2) exempts it — no conflict.
        rows = [
            {"a": "1", "b": "x", "c": "p"},
            {"a": "1", "b": "y", "c": NULL},
        ]
        backend, ddl, instance = _loaded(schema, rows)
        verifier = SQLVerifier(backend, ddl)
        assert instance.fd_violations({"a"}, {"b"}) == []
        assert verifier.fd_violations("r", {"a"}, {"b"}) == []

    def test_duplicate_rows_are_not_conflicts(self, schema):
        rows = [
            {"a": "1", "b": "x", "c": "p"},
            {"a": "1", "b": "x", "c": "p"},
        ]
        self._assert_identical(schema, rows, {"a"}, {"b", "c"})

    def test_empty_lhs(self, schema):
        rows = [
            {"a": "1", "b": "x", "c": "p"},
            {"a": "2", "b": "y", "c": "p"},
        ]
        self._assert_identical(schema, rows, frozenset(), {"b"})
        self._assert_identical(schema, rows, frozenset(), {"c"})

    def test_key_violations_match(self, schema):
        rows = [
            {"a": "1", "b": "x", "c": "p"},
            {"a": "1", "b": "y", "c": "q"},
        ]
        backend, ddl, instance = _loaded(schema, rows)
        schema_with_key = RelationSchema("r", ["a", "b", "c"], keys=[{"a"}])
        verifier = SQLVerifier(backend, schema_with_key)
        expected = RelationInstance(schema_with_key, rows).key_violations()
        assert verifier.key_violations("r") == expected
        assert expected  # the case is non-trivial

    def test_satisfies_fd_fast_path(self, schema):
        rows = [
            {"a": "1", "b": "x", "c": "p"},
            {"a": "1", "b": "y", "c": "q"},
        ]
        backend, ddl, _ = _loaded(schema, rows)
        verifier = SQLVerifier(backend, ddl)
        assert not verifier.satisfies_fd("r", {"a"}, {"b"})
        assert verifier.satisfies_fd("r", {"b"}, {"a"})


class TestCheckKeys:
    def test_reports_only_violating_tables(self):
        schema = RelationSchema("r", ["a", "b"], keys=[{"a"}])
        clean = RelationSchema("s", ["x"], keys=[{"x"}])
        from repro.relational.schema import DatabaseSchema

        ddl = compile_ddl(DatabaseSchema([schema, clean]), mode="log")
        backend = SQLiteBackend()
        loader = BulkLoader(backend, ddl)
        loader.create_schema()
        loader.load_rows("r", [{"a": "1", "b": "x"}, {"a": "1", "b": "y"}])
        loader.load_rows("s", [{"x": "1"}])
        report = SQLVerifier(backend, ddl).check_keys()
        assert set(report) == {"r"}
        assert report["r"][0].kind == "value-conflict"

    def test_no_key_raises(self, schema):
        backend, ddl, _ = _loaded(schema, [])
        with pytest.raises(ValueError):
            SQLVerifier(backend, ddl).key_violations("r")


class TestGeneratedSQL:
    def test_group_query_is_group_by_having(self, schema):
        sql = conflict_groups_sql(schema, {"a"}, {"b"})
        assert "GROUP BY" in sql and "HAVING" in sql

    def test_group_query_counts_groups(self, schema):
        rows = [
            {"a": "1", "b": "x", "c": "p"},
            {"a": "1", "b": "y", "c": "p"},
            {"a": "2", "b": "z", "c": "p"},
        ]
        backend, ddl, _ = _loaded(schema, rows)
        groups = backend.query(conflict_groups_sql(schema, {"a"}, {"b"}))
        assert groups == [("1", 2)]

    def test_null_query_none_for_empty_lhs(self, schema):
        assert null_determinant_sql(schema, frozenset(), {"a"}) is None

    def test_unknown_attribute_rejected(self, schema):
        with pytest.raises(ValueError):
            conflict_witness_sql(schema, {"nope"}, {"a"})
        with pytest.raises(ValueError):
            null_determinant_sql(schema, {"a"}, {"nope"})

    def test_empty_dependent_rejected(self, schema):
        with pytest.raises(ValueError):
            conflict_groups_sql(schema, {"a"}, frozenset())


class TestHostileNamesInVerification:
    def test_column_named_rowid_does_not_shadow_the_ordinal(self):
        # 'rowid' is a legal document attribute; the ordinal expression
        # must fall back to an unshadowed alias or every witness is lost.
        schema = RelationSchema("r", ["rowid", "b"])
        rows = [
            {"rowid": "5", "b": "x"},
            {"rowid": "5", "b": "y"},
        ]
        backend, ddl, instance = _loaded(schema, rows)
        verifier = SQLVerifier(backend, ddl)
        expected = instance.fd_violations({"rowid"}, {"rowid", "b"})
        assert expected, "the case must be non-trivial"
        assert verifier.fd_violations("r", {"rowid"}, {"rowid", "b"}) == expected

    def test_all_rowid_aliases_shadowed_is_an_error(self):
        from repro.storage.verify import row_ordinal_expression

        schema = RelationSchema("r", ["rowid", "_rowid_", "OID"])
        with pytest.raises(ValueError):
            row_ordinal_expression(schema)

    def test_hostile_attribute_names(self):
        schema = RelationSchema('t"bl', ['k"ey', "va l", "__ix"])
        rows = [
            {'k"ey': "1", "va l": "x", "__ix": "i"},
            {'k"ey': "1", "va l": "y", "__ix": "i"},
        ]
        backend, ddl, instance = _loaded(schema, rows)
        verifier = SQLVerifier(backend, ddl)
        assert verifier.fd_violations('t"bl', {'k"ey'}, {"va l"}) == (
            instance.fd_violations({'k"ey'}, {"va l"})
        )

    def test_provenance_column_excluded_from_checking(self):
        schema = RelationSchema("r", ["a", "b"])
        ddl = compile_ddl(schema, mode="log", provenance_column="_document")
        backend = SQLiteBackend()
        loader = BulkLoader(backend, ddl)
        loader.create_schema()
        loader.load_rows("r", [{"a": "1", "b": "x"}], document="d0")
        loader.load_rows("r", [{"a": "1", "b": "x"}], document="d1")
        # Same logical row from two documents: under the key {a} that is a
        # duplicate, not a conflict — the provenance stamp must not turn it
        # into one.
        verifier = SQLVerifier(backend, ddl)
        assert verifier.fd_violations("r", {"a"}, {"a", "b"}) == []
