"""Unit tests for the DDL compiler (schema + propagated cover → constraints)."""

import pytest

from repro.relational.fd import FunctionalDependency as FD
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.storage import compile_ddl, compile_table_ddl


@pytest.fixture()
def chapter_schema():
    return RelationSchema("chapter", ["inBook", "number", "name"])


@pytest.fixture()
def key_cover():
    # {inBook, number} is a key; name determines nothing.
    return [FD({"inBook", "number"}, {"name"})]


class TestStrictMode:
    def test_key_fd_becomes_primary_key(self, chapter_schema, key_cover):
        ddl = compile_ddl(chapter_schema, key_cover, mode="strict")
        table = ddl.table("chapter")
        assert table.key_sets == [frozenset({"inBook", "number"})]
        assert 'PRIMARY KEY ("inBook", "number")' in table.create
        assert table.index_fds == []

    def test_second_key_becomes_unique(self):
        schema = RelationSchema("r", ["a", "b", "c"])
        cover = [FD({"a"}, {"b", "c"}), FD({"b"}, {"a", "c"})]
        ddl = compile_ddl(schema, cover, mode="strict")
        table = ddl.table("r")
        assert frozenset({"a"}) in table.key_sets
        assert frozenset({"b"}) in table.key_sets
        # The canonical minimal-key reduction (sorted removal order) lands
        # on {b}; the other candidate key {a} becomes a UNIQUE constraint.
        assert 'PRIMARY KEY ("b")' in table.create
        assert 'UNIQUE ("a")' in table.create

    def test_declared_keys_win_over_cover(self, chapter_schema, key_cover):
        chapter_schema.add_key({"name"})
        ddl = compile_ddl(chapter_schema, key_cover, mode="strict")
        table = ddl.table("chapter")
        assert table.key_sets[0] == frozenset({"name"})
        assert 'PRIMARY KEY ("name")' in table.create

    def test_non_key_fd_becomes_supporting_index(self):
        schema = RelationSchema("r", ["a", "b", "c"])
        cover = [FD({"a"}, {"b"})]  # a does not determine c
        ddl = compile_ddl(schema, cover, mode="strict")
        table = ddl.table("r")
        # {a, c} is the candidate key the cover *implies* (a determines b);
        # the non-key FD itself is only backed by a supporting index.
        assert table.key_sets == [frozenset({"a", "c"})]
        assert table.index_fds == cover
        assert any('CREATE INDEX' in s and '("a")' in s for s in table.indexes)
        assert 'PRIMARY KEY ("a", "c")' in table.create

    def test_canonical_minimal_key_recovered_through_equivalence(self):
        # The cover states the key through a0 (a0 <-> k0), but {k0, k1} is
        # the natural propagated key; the compiler must recover it.
        schema = RelationSchema("u", ["k0", "k1", "a0", "e1"])
        cover = [
            FD({"a0"}, {"k0"}),
            FD({"k0"}, {"a0"}),
            FD({"a0", "k1"}, {"e1"}),
        ]
        ddl = compile_ddl(schema, cover, mode="strict")
        key_sets = ddl.table("u").key_sets
        assert frozenset({"k0", "k1"}) in key_sets
        assert frozenset({"a0", "k1"}) in key_sets


class TestLogMode:
    def test_no_uniqueness_only_indexes(self, chapter_schema, key_cover):
        ddl = compile_ddl(chapter_schema, key_cover, mode="log")
        table = ddl.table("chapter")
        assert "PRIMARY KEY" not in table.create
        assert "UNIQUE" not in table.create
        assert not any("UNIQUE" in s for s in table.indexes)
        # The key set is still *known* (the verifier uses it) and indexed.
        assert table.key_sets == [frozenset({"inBook", "number"})]
        assert any('("inBook", "number")' in s for s in table.indexes)


class TestPlanShape:
    def test_database_schema_compiles_every_relation(self, key_cover):
        db = DatabaseSchema(
            [
                RelationSchema("chapter", ["inBook", "number", "name"]),
                RelationSchema("book", ["isbn", "title"]),
            ]
        )
        ddl = compile_ddl(db, key_cover, mode="strict")
        assert set(ddl.tables) == {"chapter", "book"}
        # The cover projects: it only applies to the relation holding all
        # its attributes.
        assert ddl.table("book").key_sets == []
        assert len(ddl.statements()) >= 2
        assert "CREATE TABLE" in ddl.script()

    def test_unknown_mode_rejected(self, chapter_schema):
        with pytest.raises(ValueError):
            compile_ddl(chapter_schema, mode="lenient")

    def test_unknown_table_lookup(self, chapter_schema):
        ddl = compile_ddl(chapter_schema)
        with pytest.raises(KeyError):
            ddl.table("nope")

    def test_empty_lhs_fd_is_unenforced(self):
        schema = RelationSchema("r", ["a", "b"])
        ddl = compile_ddl(schema, [FD(frozenset(), {"a"})], mode="strict")
        table = ddl.table("r")
        assert len(table.unenforced) == 1
        # ∅ → a makes a constant, so {b} is the implied candidate key; the
        # constant FD itself cannot be spelled as a constraint.
        assert table.key_sets == [frozenset({"b"})]

    def test_all_constant_cover_emits_no_empty_index(self):
        # ∅ → every attribute reduces the canonical key to the empty set,
        # which has no UNIQUE/index spelling; the DDL must stay executable.
        import sqlite3

        schema = RelationSchema("r", ["a", "b"])
        cover = [FD(frozenset(), {"a"}), FD(frozenset(), {"b"})]
        for mode in ("strict", "log"):
            ddl = compile_ddl(schema, cover, mode=mode)
            assert ddl.table("r").key_sets == []
            connection = sqlite3.connect(":memory:")
            for statement in ddl.statements():
                connection.execute(statement)
            connection.close()

    def test_trivial_fd_ignored(self):
        schema = RelationSchema("r", ["a", "b"])
        ddl = compile_ddl(schema, [FD({"a", "b"}, {"a"})], mode="strict")
        table = ddl.table("r")
        assert table.key_sets == []
        assert table.index_fds == []


class TestProvenance:
    def test_provenance_column_added_and_indexed(self, chapter_schema, key_cover):
        ddl = compile_ddl(
            chapter_schema, key_cover, mode="strict", provenance_column="_document"
        )
        table = ddl.table("chapter")
        assert '"_document" TEXT' in table.create
        # Never part of the key.
        assert all("_document" not in key for key in table.key_sets)
        assert any('("_document")' in s for s in table.indexes)

    def test_collision_with_attribute_rejected(self, chapter_schema):
        with pytest.raises(ValueError):
            compile_ddl(chapter_schema, provenance_column="name")


class TestHostileNames:
    def test_hostile_table_and_columns_execute(self):
        import sqlite3

        schema = RelationSchema(
            't"able', ['c"ol', "se;lect", "sp ace"], keys=[{'c"ol'}]
        )
        ddl = compile_ddl(schema, [FD({'c"ol'}, {"se;lect", "sp ace"})], mode="strict")
        connection = sqlite3.connect(":memory:")
        for statement in ddl.statements():
            connection.execute(statement)
        tables = {
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        assert tables == {'t"able'}
        connection.close()
