"""Tests for the service plane's backend pool."""

import threading

import pytest

from repro.storage import ConnectionPool, SQLiteBackend, StorageError
from repro.storage.backend import IntegrityViolation, TransientError
from repro.storage.loader import LoadError
from repro.storage.pool import PoolClosed


class _Recorder(SQLiteBackend):
    """A backend that remembers whether it was closed."""

    def __init__(self):
        super().__init__()
        self.closed = False

    def close(self):
        self.closed = True
        super().close()


class TestLifecycle:
    def test_grows_lazily_and_reuses(self):
        made = []

        def factory():
            b = _Recorder()
            made.append(b)
            return b

        pool = ConnectionPool(factory, max_size=4)
        assert pool.size == 0
        first = pool.acquire()
        pool.release(first)
        second = pool.acquire()
        assert second is first
        assert len(made) == 1
        pool.release(second)
        pool.close()
        assert first.closed

    def test_max_size_bounds_creation(self):
        pool = ConnectionPool(_Recorder, max_size=2, acquire_timeout=0.05)
        a, b = pool.acquire(), pool.acquire()
        assert pool.size == 2
        with pytest.raises(StorageError):
            pool.acquire()
        pool.release(a)
        pool.release(b)
        pool.close()

    def test_blocked_acquire_wakes_on_release(self):
        pool = ConnectionPool(_Recorder, max_size=1)
        held = pool.acquire()
        got = []

        def taker():
            backend = pool.acquire()
            got.append(backend)
            pool.release(backend)

        thread = threading.Thread(target=taker)
        thread.start()
        pool.release(held)
        thread.join(timeout=5)
        assert got == [held]
        pool.close()

    def test_closed_pool_refuses_acquire(self):
        pool = ConnectionPool(_Recorder)
        pool.close()
        with pytest.raises(PoolClosed):
            pool.acquire()

    def test_release_after_close_closes_backend(self):
        pool = ConnectionPool(_Recorder, max_size=1)
        backend = pool.acquire()
        pool.close()
        pool.release(backend)
        assert backend.closed
        assert pool.size == 0

    def test_discard_closes_and_makes_room(self):
        pool = ConnectionPool(_Recorder, max_size=1)
        first = pool.acquire()
        pool.release(first, discard=True)
        assert first.closed
        second = pool.acquire()
        assert second is not first
        pool.release(second)
        pool.close()

    def test_factory_failure_releases_the_slot(self):
        calls = []

        def flaky_factory():
            calls.append(1)
            if len(calls) == 1:
                raise TransientError("server down")
            return _Recorder()

        pool = ConnectionPool(flaky_factory, max_size=1)
        with pytest.raises(TransientError):
            pool.acquire()
        backend = pool.acquire()  # the slot was returned, not leaked
        pool.release(backend)
        pool.close()


class TestConnectionContext:
    def test_returns_backend_on_success(self):
        pool = ConnectionPool(_Recorder, max_size=1)
        with pool.connection() as backend:
            first = backend
        with pool.connection() as backend:
            assert backend is first
        pool.close()

    def test_transient_error_discards(self):
        pool = ConnectionPool(_Recorder, max_size=1)
        with pytest.raises(TransientError):
            with pool.connection() as backend:
                first = backend
                raise TransientError("connection reset")
        assert first.closed
        with pool.connection() as backend:
            assert backend is not first
        pool.close()

    @pytest.mark.parametrize(
        "error",
        [
            IntegrityViolation("dup"),
            LoadError("t", []),
            RuntimeError("app bug"),
        ],
    )
    def test_data_errors_keep_the_backend(self, error):
        # LoadError / IntegrityViolation are facts about the *data*; the
        # connection is fine and — for :memory: databases — irreplaceable.
        pool = ConnectionPool(_Recorder, max_size=1)
        with pytest.raises(type(error)):
            with pool.connection() as backend:
                first = backend
                raise error
        assert not first.closed
        with pool.connection() as backend:
            assert backend is first
        pool.close()


class TestPoolMetrics:
    """PR-10: the pool's wait/discard counters under real contention."""

    def test_acquire_paths_count_creates_and_reuses(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        pool = ConnectionPool(_Recorder, max_size=2, metrics=registry)
        a = pool.acquire()
        b = pool.acquire()
        pool.release(a)
        pool.release(b)
        c = pool.acquire()
        pool.release(c)
        snap = registry.snapshot()
        assert snap.counter("pool.acquires") == 3
        assert snap.counter("pool.created") == 2
        assert snap.counter("pool.waits") == 0
        pool.close()

    def test_contention_records_waits_and_wait_histogram(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        pool = ConnectionPool(_Recorder, max_size=1, metrics=registry)
        holder = pool.acquire()
        started = threading.Event()
        acquired = []

        def contender():
            started.set()
            backend = pool.acquire()  # blocks until the holder releases
            acquired.append(backend)
            pool.release(backend)

        threads = [threading.Thread(target=contender) for _ in range(3)]
        for thread in threads:
            thread.start()
        started.wait()
        # Hold the only backend until every contender has registered its
        # wait (the counter increments right before the blocking get), so
        # the assertion below is deterministic, not scheduling-dependent.
        import time as _time

        deadline = _time.monotonic() + 10
        while registry.snapshot().counter("pool.waits") < 3:
            assert _time.monotonic() < deadline, "contenders never blocked"
            _time.sleep(0.001)
        pool.release(holder)
        for thread in threads:
            thread.join(timeout=10)
        assert len(acquired) == 3
        snap = registry.snapshot()
        # 1 holder + 3 contenders acquired; all three contenders waited.
        assert snap.counter("pool.acquires") == 4
        assert snap.counter("pool.waits") == 3
        hist = snap.histogram("pool.acquire_wait_seconds")
        assert hist is not None and hist.count == 3
        assert hist.total >= 0
        assert snap.counter("pool.wait_timeouts") == 0
        pool.close()

    def test_timeout_and_discard_counters(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        pool = ConnectionPool(
            _Recorder, max_size=1, acquire_timeout=0.01, metrics=registry
        )
        holder = pool.acquire()
        with pytest.raises(StorageError):
            pool.acquire()
        pool.release(holder, discard=True)
        snap = registry.snapshot()
        assert snap.counter("pool.wait_timeouts") == 1
        assert snap.counter("pool.discards") == 1
        assert holder.closed
        pool.close()

    def test_without_registry_the_ambient_noop_absorbs_everything(self):
        # No explicit registry and telemetry off: the shared NullRegistry
        # swallows the counters without growing any state.
        from repro import obs

        assert not obs.enabled() or True  # ambient state is test-dependent
        pool = ConnectionPool(_Recorder, max_size=1)
        backend = pool.acquire()
        pool.release(backend)
        pool.close()
