"""Tests for the PostgreSQL backend and its in-process fake.

Everything here runs without a server: the fake reproduces the driver's
observable surface (``%s`` placeholders, COPY, savepoint-in-transaction
rules, error taxonomy) over stdlib sqlite.  The same contract runs
against a live server via ``REPRO_PG_DSN`` in
``test_backend_contract.py``.
"""

import pytest

from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.storage import (
    BulkLoader,
    IntegrityViolation,
    PostgresBackend,
    SQLVerifier,
    SQLiteBackend,
    StorageError,
    compile_ddl,
    fake_postgres_backend,
)
from repro.storage.backend import TransientError
from repro.storage.postgres import ORDINAL_COLUMN, _translate_format_sql
from repro.transform.rule import TableRule

RULES = [
    TableRule(
        "t",
        fields={"a": "xa", "b": "xb"},
        mappings=[("xi", "xr", "i"), ("xa", "xi", "a"), ("xb", "xi", "b")],
    )
]

SCHEMA = DatabaseSchema([RelationSchema("t", ["a", "b"], keys=[frozenset({"a"})])])


def _doc(*pairs):
    items = "".join(f"<i><a>{a}</a><b>{b}</b></i>" for a, b in pairs)
    return f"<r>{items}</r>"


class TestConstruction:
    def test_needs_exactly_one_of_dsn_or_connection(self):
        with pytest.raises(ValueError):
            PostgresBackend()

    def test_advertises_pg_protocol(self):
        backend = fake_postgres_backend()
        assert backend.placeholder == "%s"
        assert backend.supports_copy
        assert backend.flavor == "fake"

    def test_real_backend_defaults_to_the_ordinal_column(self):
        # The fake runs on sqlite and keeps its genuine rowid; a real
        # server needs the explicit insertion-order column.
        assert ORDINAL_COLUMN == "_rid"
        assert fake_postgres_backend().ordinal_column is None


class TestPlaceholderTranslation:
    def test_format_to_qmark(self):
        assert _translate_format_sql("VALUES (%s, %s)") == "VALUES (?, ?)"

    def test_double_percent_unescapes(self):
        assert _translate_format_sql('"a%%sb" = %s') == '"a%sb" = ?'

    def test_unparameterized_statements_keep_percent_signs(self):
        backend = fake_postgres_backend()
        backend.execute('CREATE TABLE "p" ("a" TEXT)')
        backend.execute("INSERT INTO \"p\" VALUES ('100%')")
        assert backend.query('SELECT "a" FROM "p"') == [("100%",)]

    def test_parameterized_statements_bind_by_format(self):
        backend = fake_postgres_backend()
        backend.execute('CREATE TABLE "p" ("a" TEXT, "b" TEXT)')
        backend.execute('INSERT INTO "p" VALUES (%s, %s)', ("1", "x"))
        backend.executemany('INSERT INTO "p" VALUES (%s, %s)', [("2", "y")])
        assert sorted(backend.query('SELECT "a" FROM "p"')) == [("1",), ("2",)]


class TestErrorTaxonomy:
    def test_duplicate_key(self):
        backend = fake_postgres_backend()
        backend.execute('CREATE TABLE "e" ("a" TEXT PRIMARY KEY)')
        backend.execute('INSERT INTO "e" VALUES (%s)', ("1",))
        with pytest.raises(IntegrityViolation):
            backend.execute('INSERT INTO "e" VALUES (%s)', ("1",))

    def test_missing_table_is_not_transient(self):
        backend = fake_postgres_backend()
        with pytest.raises(StorageError) as info:
            backend.query('SELECT * FROM "absent"')
        assert not isinstance(info.value, (IntegrityViolation, TransientError))

    def test_lock_contention_is_transient(self):
        import sqlite3

        backend = fake_postgres_backend()
        error = backend._connection._translate(
            sqlite3.OperationalError("database is locked")
        )
        assert backend._translate(error).__class__ is TransientError


class TestCopy:
    def test_copy_rows_loads_and_escapes(self):
        backend = fake_postgres_backend()
        backend.execute('CREATE TABLE "c" ("a" TEXT, "b" TEXT)')
        n = backend.copy_rows("c", ["a", "b"], [("1", "x\ty"), ("2", None)])
        assert n == 2
        assert sorted(backend.query('SELECT "a", "b" FROM "c"')) == [
            ("1", "x\ty"),
            ("2", None),
        ]


class TestSavepointSemantics:
    def test_bare_savepoint_opens_and_closes_a_transaction(self):
        # sqlite allows SAVEPOINT outside a transaction; PostgreSQL does
        # not.  The backend reproduces the sqlite behaviour the loader
        # relies on by wrapping top-level savepoints in BEGIN/COMMIT.
        backend = fake_postgres_backend()
        backend.execute('CREATE TABLE "s" ("a" TEXT PRIMARY KEY)')
        with backend.savepoint("doc"):
            backend.execute('INSERT INTO "s" VALUES (%s)', ("1",))
        assert backend.query('SELECT "a" FROM "s"') == [("1",)]
        with pytest.raises(IntegrityViolation):
            with backend.savepoint("doc"):
                backend.execute('INSERT INTO "s" VALUES (%s)', ("2",))
                backend.execute('INSERT INTO "s" VALUES (%s)', ("1",))
        assert sorted(backend.query('SELECT "a" FROM "s"')) == [("1",)]


class TestLoaderParity:
    """The PG path must be witness-identical to the sqlite path."""

    def _load(self, backend, mode, docs):
        ddl = compile_ddl(
            SCHEMA, mode=mode, provenance_column="_doc",
            ordinal_column=backend.ordinal_column, if_not_exists=True,
        )
        loader = BulkLoader(backend, ddl)
        loader.create_schema()
        report = loader.load_corpus(docs, RULES)
        return ddl, report

    def test_loaded_values_are_identical(self):
        docs = [("d1", _doc(("1", "x"), ("2", "y")))]
        results = {}
        for name, backend in (
            ("sqlite", SQLiteBackend()),
            ("pg", fake_postgres_backend()),
        ):
            self._load(backend, "strict", docs)
            results[name] = sorted(
                backend.query('SELECT "a", "b", "_doc" FROM "t"')
            )
        assert results["sqlite"] == results["pg"]

    def test_verifier_witnesses_are_identical(self):
        docs = [("d1", _doc(("1", "x"), ("1", "y"), ("2", "z")))]
        witnesses = {}
        for name, backend in (
            ("sqlite", SQLiteBackend()),
            ("pg", fake_postgres_backend()),
        ):
            ddl, _ = self._load(backend, "log", docs)
            found = SQLVerifier(backend, ddl).check_keys()
            witnesses[name] = {
                table: [(v.kind, v.detail) for v in violations]
                for table, violations in found.items()
            }
        assert witnesses["sqlite"] == witnesses["pg"]
        assert witnesses["sqlite"]  # the duplicate really was caught

    def test_strict_rejection_is_identical(self):
        docs = [("d1", _doc(("1", "x"), ("1", "y")))]
        messages = {}
        for name, backend in (
            ("sqlite", SQLiteBackend()),
            ("pg", fake_postgres_backend()),
        ):
            from repro.storage import LoadError

            with pytest.raises(LoadError) as info:
                self._load(backend, "strict", docs)
            messages[name] = (str(info.value), info.value.rows)
        assert messages["sqlite"] == messages["pg"]


class TestOrdinalRecovery:
    def test_row_number_bridges_sequence_gaps(self):
        # Rolled-back savepoints leave gaps in a BIGSERIAL sequence; the
        # verifier's witness indexes must stay gapless insertion ordinals.
        backend = SQLiteBackend()
        backend.execute(
            'CREATE TABLE "g" ("a" TEXT, "b" TEXT, "_rid" INTEGER)'
        )
        rows = [("1", "x", 10), ("1", "y", 25), ("2", "z", 31), ("1", "w", 44)]
        backend.executemany('INSERT INTO "g" VALUES (?, ?, ?)', rows)
        schema = RelationSchema("g", ["a", "b"], keys=[frozenset({"a"})])
        verifier = SQLVerifier(backend, schema, ordinal_column="_rid")
        found = verifier.check_keys()
        details = [v.detail for v in found["g"]]
        assert details  # the conflict on a=1 was found
        text = " ".join(details)
        # Witness indexes are 0-based positions, not raw _rid values.
        assert "10" not in text and "44" not in text
