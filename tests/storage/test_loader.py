"""Unit tests for transactional bulk loading."""

import pytest

from repro.relational.fd import FunctionalDependency as FD
from repro.relational.instance import NULL, RelationInstance
from repro.relational.schema import RelationSchema
from repro.storage import (
    BulkLoader,
    LoadError,
    SQLiteBackend,
    compile_ddl,
)
from repro.transform.dsl import parse_transformation

TRANSFORM_TEXT = """
table chapter
  var ya <- xr : //book
  var y1 <- ya : @isbn
  var yc <- ya : chapter
  var y2 <- yc : @number
  var y3 <- yc : name
  field inBook = value(y1)
  field number = value(y2)
  field name   = value(y3)
"""

DOC = """
<bib>
  <book isbn="111"><chapter number="1"><name>A</name></chapter>
    <chapter number="2"><name>B</name></chapter></book>
  <book isbn="222"><chapter number="1"><name>C</name></chapter></book>
</bib>
"""

DOC_VIOLATING = """
<bib>
  <book isbn="333"><chapter number="1"><name>A2</name></chapter>
    <chapter number="1"><name>Clash</name></chapter></book>
</bib>
"""

DOC_OTHER = """
<bib>
  <book isbn="444"><chapter number="1"><name>D</name></chapter></book>
</bib>
"""


@pytest.fixture()
def chapter_schema():
    return RelationSchema("chapter", ["inBook", "number", "name"])


@pytest.fixture()
def cover():
    return [FD({"inBook", "number"}, {"name"})]


def _loader(schema, cover, mode="strict", batch_size=500, provenance=None):
    ddl = compile_ddl(schema, cover, mode=mode, provenance_column=provenance)
    backend = SQLiteBackend()
    loader = BulkLoader(backend, ddl, batch_size=batch_size)
    loader.create_schema()
    return backend, loader


class TestRowLoading:
    def test_load_rows_counts_and_contents(self, chapter_schema, cover):
        backend, loader = _loader(chapter_schema, cover)
        rows = [
            {"inBook": "1", "number": "1", "name": "A"},
            {"inBook": "1", "number": "2", "name": NULL},
        ]
        assert loader.load_rows("chapter", rows) == 2
        assert backend.query('SELECT "name" FROM "chapter" ORDER BY rowid') == [
            ("A",),
            (None,),
        ]

    def test_small_batches_load_everything(self, chapter_schema, cover):
        backend, loader = _loader(chapter_schema, cover, batch_size=2)
        rows = [{"inBook": "1", "number": str(i), "name": "x"} for i in range(7)]
        assert loader.load_rows("chapter", rows) == 7
        assert backend.row_count("chapter") == 7

    def test_load_instance(self, chapter_schema, cover):
        backend, loader = _loader(chapter_schema, cover)
        instance = RelationInstance(
            chapter_schema, [{"inBook": "1", "number": "1", "name": "A"}]
        )
        assert loader.load_instance(instance) == 1

    def test_generator_input_is_consumed_lazily(self, chapter_schema, cover):
        backend, loader = _loader(chapter_schema, cover, batch_size=3)
        loaded = loader.load_rows(
            "chapter",
            ({"inBook": "1", "number": str(i), "name": "x"} for i in range(10)),
        )
        assert loaded == 10


class TestStrictPinpointing:
    def test_all_violating_rows_reported_across_batches(self, chapter_schema, cover):
        backend, loader = _loader(chapter_schema, cover, batch_size=2)
        rows = [
            {"inBook": "1", "number": "1", "name": "A"},
            {"inBook": "1", "number": "2", "name": "B"},
            {"inBook": "1", "number": "1", "name": "dup-1"},  # batch 2
            {"inBook": "1", "number": "3", "name": "C"},
            {"inBook": "1", "number": "2", "name": "dup-2"},  # batch 3
        ]
        with pytest.raises(LoadError) as info:
            loader.load_rows("chapter", rows)
        rejected = info.value.rows
        assert [row["name"] for row in rejected] == ["dup-1", "dup-2"]
        # The clean rows of the call are staged (no savepoint at this level).
        assert backend.row_count("chapter") == 3

    def test_log_mode_never_raises(self, chapter_schema, cover):
        backend, loader = _loader(chapter_schema, cover, mode="log")
        rows = [
            {"inBook": "1", "number": "1", "name": "A"},
            {"inBook": "1", "number": "1", "name": "Clash"},
        ]
        assert loader.load_rows("chapter", rows) == 2
        assert backend.row_count("chapter") == 2


class TestDocumentLoading:
    def test_streaming_document_load(self, cover):
        transformation = parse_transformation(TRANSFORM_TEXT)
        rule = transformation.rule("chapter")
        ddl = compile_ddl(rule.schema(), cover, mode="strict")
        backend = SQLiteBackend()
        loader = BulkLoader(backend, ddl)
        loader.create_schema()
        counts = loader.load_document(DOC, transformation)
        assert counts == {"chapter": 3}
        assert backend.row_count("chapter") == 3

    def test_streaming_matches_instance_load(self, cover):
        transformation = parse_transformation(TRANSFORM_TEXT)
        rule = transformation.rule("chapter")
        from repro.transform.stream import stream_evaluate_transformation

        instances = stream_evaluate_transformation(transformation, DOC)
        ddl = compile_ddl(rule.schema(), cover, mode="log")

        b1 = SQLiteBackend()
        l1 = BulkLoader(b1, ddl)
        l1.create_schema()
        l1.load_document(DOC, transformation)

        b2 = SQLiteBackend()
        l2 = BulkLoader(b2, ddl)
        l2.create_schema()
        l2.load_instance(instances["chapter"])

        q = 'SELECT "inBook", "number", "name" FROM "chapter" ORDER BY rowid'
        assert b1.query(q) == b2.query(q)

    def test_violating_document_rolls_back_completely(self, cover):
        transformation = parse_transformation(TRANSFORM_TEXT)
        rule = transformation.rule("chapter")
        ddl = compile_ddl(rule.schema(), cover, mode="strict")
        backend = SQLiteBackend()
        loader = BulkLoader(backend, ddl)
        loader.create_schema()
        loader.load_document(DOC, transformation)
        with pytest.raises(LoadError) as info:
            loader.load_document(DOC_VIOLATING, transformation)
        assert [row["name"] for row in info.value.rows] == ["Clash"]
        # The second document left nothing behind; the first is intact.
        assert backend.row_count("chapter") == 3

    def test_parallel_document_load_matches_serial(self, cover):
        transformation = parse_transformation(TRANSFORM_TEXT)
        rule = transformation.rule("chapter")
        ddl = compile_ddl(rule.schema(), cover, mode="log")
        serial_backend = SQLiteBackend()
        serial = BulkLoader(serial_backend, ddl)
        serial.create_schema()
        serial.load_document(DOC, transformation)

        parallel_backend = SQLiteBackend()
        parallel = BulkLoader(parallel_backend, ddl)
        parallel.create_schema()
        parallel.load_document(DOC, transformation, jobs=2)

        q = 'SELECT "inBook", "number", "name" FROM "chapter" ORDER BY rowid'
        assert parallel_backend.query(q) == serial_backend.query(q)


class TestCorpusLoading:
    def _corpus_loader(self, cover, mode="strict"):
        transformation = parse_transformation(TRANSFORM_TEXT)
        rule = transformation.rule("chapter")
        ddl = compile_ddl(
            rule.schema(), cover, mode=mode, provenance_column="_document"
        )
        backend = SQLiteBackend()
        loader = BulkLoader(backend, ddl)
        loader.create_schema()
        return backend, loader, transformation

    def test_provenance_stamped_per_document(self, cover):
        backend, loader, transformation = self._corpus_loader(cover, mode="log")
        report = loader.load_corpus([("a.xml", DOC), ("b.xml", DOC)], transformation)
        assert report.documents == ["a.xml", "b.xml"]
        assert report.rows == {"chapter": 6}
        stamps = backend.query(
            'SELECT DISTINCT "_document" FROM "chapter" ORDER BY 1'
        )
        assert stamps == [("a.xml",), ("b.xml",)]

    def test_default_document_ids(self, cover):
        backend, loader, transformation = self._corpus_loader(cover, mode="log")
        report = loader.load_corpus([DOC, DOC], transformation)
        assert report.documents == ["doc0", "doc1"]

    def test_on_error_skip_keeps_going(self, cover):
        backend, loader, transformation = self._corpus_loader(cover, mode="strict")
        report = loader.load_corpus(
            [("good", DOC), ("bad", DOC_VIOLATING), ("good2", DOC_OTHER)],
            transformation,
            on_error="skip",
        )
        assert report.documents == ["good", "good2"]
        assert set(report.rejected) == {"bad"}
        assert [row["name"] for row in report.rejected["bad"].rows] == ["Clash"]
        # The rejected document contributed no rows at all.
        assert backend.query(
            'SELECT COUNT(*) FROM "chapter" WHERE "_document" = ?', ("bad",)
        ) == [(0,)]

    def test_skip_counts_reflect_only_loaded_documents(self, cover):
        # The violating document's rows reach the database mid-transaction
        # before the constraint fires; the rollback must also unwind them
        # from the report's counts, which therefore always equal what is
        # actually in the tables.
        backend, loader, transformation = self._corpus_loader(cover, mode="strict")
        baseline = loader.load_corpus(
            [("good", DOC), ("good2", DOC_OTHER)], transformation
        ).rows
        backend2, loader2, _ = self._corpus_loader(cover, mode="strict")
        report = loader2.load_corpus(
            [("good", DOC), ("bad", DOC_VIOLATING), ("good2", DOC_OTHER)],
            transformation,
            on_error="skip",
        )
        assert report.rows == baseline
        assert backend2.query('SELECT COUNT(*) FROM "chapter"') == [
            (report.rows["chapter"],)
        ]

    def test_on_error_raise_is_default(self, cover):
        backend, loader, transformation = self._corpus_loader(cover, mode="strict")
        with pytest.raises(LoadError):
            loader.load_corpus([("good", DOC), ("bad", DOC_VIOLATING)], transformation)

    def test_bad_on_error_rejected(self, cover):
        backend, loader, transformation = self._corpus_loader(cover)
        with pytest.raises(ValueError):
            loader.load_corpus([DOC], transformation, on_error="ignore")

    def test_provenance_plan_requires_document_id_for_raw_rows(
        self, chapter_schema, cover
    ):
        backend, loader = _loader(chapter_schema, cover, provenance="_document")
        with pytest.raises(ValueError):
            loader.load_rows("chapter", [{"inBook": "1", "number": "1", "name": "A"}])


class TestLoaderValidation:
    def test_bad_batch_size(self, chapter_schema, cover):
        ddl = compile_ddl(chapter_schema, cover)
        with pytest.raises(ValueError):
            BulkLoader(SQLiteBackend(), ddl, batch_size=0)
