"""Tests for bounded retries with deterministic backoff."""

import pytest

from repro.storage import (
    IntegrityViolation,
    RetryingBackend,
    RetryPolicy,
    SQLiteBackend,
    StorageError,
    call_with_retries,
)
from repro.storage.backend import TransientError
from repro.storage.faults import FaultInjectingBackend, FaultPlan


class TestRetryPolicy:
    def test_delays_are_deterministic_per_seed(self):
        a = RetryPolicy(max_attempts=5, seed=7).delays()
        b = RetryPolicy(max_attempts=5, seed=7).delays()
        c = RetryPolicy(max_attempts=5, seed=8).delays()
        assert a == b
        assert a != c

    def test_delays_grow_then_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, multiplier=2.0, max_delay=0.4, jitter=0.0
        )
        assert policy.delays() == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_stays_in_fraction(self):
        policy = RetryPolicy(max_attempts=20, base_delay=1.0, multiplier=1.0,
                             max_delay=1.0, jitter=0.25, seed=3)
        for delay in policy.delays():
            assert 0.75 <= delay <= 1.25

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)


class TestCallWithRetries:
    def test_transient_errors_are_absorbed(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("connection reset")
            return "ok"

        slept = []
        result = call_with_retries(
            flaky, policy=RetryPolicy(jitter=0.0), sleep=slept.append
        )
        assert result == "ok"
        assert len(calls) == 3
        assert slept == [0.05, 0.1]

    def test_attempts_bound_the_operation(self):
        def always_failing():
            raise TransientError("still down")

        with pytest.raises(TransientError):
            call_with_retries(
                always_failing,
                policy=RetryPolicy(max_attempts=3, jitter=0.0),
                sleep=lambda _: None,
            )

    def test_integrity_violations_are_never_retried(self):
        calls = []

        def duplicate():
            calls.append(1)
            raise IntegrityViolation("dup")

        with pytest.raises(IntegrityViolation):
            call_with_retries(duplicate, policy=RetryPolicy(), sleep=lambda _: None)
        assert len(calls) == 1

    def test_plain_storage_errors_are_never_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise StorageError("no such table")

        with pytest.raises(StorageError):
            call_with_retries(broken, policy=RetryPolicy(), sleep=lambda _: None)
        assert len(calls) == 1

    def test_timeout_is_a_retry_budget(self):
        now = [0.0]

        def clock():
            return now[0]

        def sleep(seconds):
            now[0] += seconds

        def always_failing():
            raise TransientError("down")

        calls = []

        def counting():
            calls.append(1)
            always_failing()

        with pytest.raises(TransientError):
            call_with_retries(
                counting,
                policy=RetryPolicy(
                    max_attempts=10, base_delay=1.0, multiplier=1.0,
                    max_delay=1.0, jitter=0.0, timeout=2.5,
                ),
                sleep=sleep,
                clock=clock,
            )
        # Delays of 1s each: after two sleeps the third would overrun 2.5s.
        assert len(calls) == 3


@pytest.fixture()
def schema_sql():
    return 'CREATE TABLE "t" ("a" TEXT, PRIMARY KEY ("a"))'


class TestRetryingBackend:
    def _flaky(self, plan):
        inner = SQLiteBackend()
        inner.execute('CREATE TABLE "t" ("a" TEXT, PRIMARY KEY ("a"))')
        faulty = FaultInjectingBackend(inner, plan)
        return RetryingBackend(
            faulty, RetryPolicy(jitter=0.0), sleep=lambda _: None
        )

    def test_absorbs_transient_faults(self):
        backend = self._flaky(FaultPlan.failing(0))
        backend.execute('INSERT INTO "t" VALUES (?)', ("1",))
        assert backend.query('SELECT "a" FROM "t"') == [("1",)]
        assert backend.retries == 1

    def test_counts_no_retries_on_clean_runs(self):
        backend = self._flaky(FaultPlan())
        backend.execute('INSERT INTO "t" VALUES (?)', ("1",))
        assert backend.retries == 0

    def test_executemany_survives_generator_parameters(self):
        backend = self._flaky(FaultPlan.failing(0))
        backend.executemany(
            'INSERT INTO "t" VALUES (?)', ((str(n),) for n in range(3))
        )
        assert backend.query('SELECT COUNT(*) FROM "t"') == [(3,)]
        assert backend.retries == 1

    def test_gives_up_after_max_attempts(self):
        plan = FaultPlan.failing(0, 1, 2, 3, 4, 5)
        backend = self._flaky(plan)
        backend.policy = RetryPolicy(max_attempts=3, jitter=0.0)
        with pytest.raises(TransientError):
            backend.execute('INSERT INTO "t" VALUES (?)', ("1",))
        assert backend.retries == 2

    def test_integrity_violations_pass_straight_through(self):
        backend = self._flaky(FaultPlan())
        backend.execute('INSERT INTO "t" VALUES (?)', ("1",))
        with pytest.raises(IntegrityViolation):
            backend.execute('INSERT INTO "t" VALUES (?)', ("1",))
        assert backend.retries == 0

    def test_advertises_inner_capabilities(self):
        inner = SQLiteBackend()
        wrapped = RetryingBackend(inner)
        assert wrapped.placeholder == inner.placeholder
        assert wrapped.supports_copy == inner.supports_copy
        assert wrapped.ordinal_column == inner.ordinal_column

    def test_transaction_verbs_are_not_retried(self):
        # A faulted BEGIN/COMMIT must pass through untouched: the fault
        # injector never counts control statements, so a plan that fails
        # ordinal 0 hits the first *data* statement even with a
        # transaction around it.
        inner = SQLiteBackend()
        inner.execute('CREATE TABLE "t" ("a" TEXT)')
        faulty = FaultInjectingBackend(inner, FaultPlan.failing(0))
        backend = RetryingBackend(faulty, RetryPolicy(jitter=0.0), sleep=lambda _: None)
        with backend.transaction():
            backend.execute('INSERT INTO "t" VALUES (?)', ("1",))
        assert [e.sql for e in faulty.history] == ['INSERT INTO "t" VALUES (?)'] * 2


class TestRetryMetrics:
    """PR-10: attempt/backoff counters, explicit registry and concurrency."""

    def test_attempts_and_sleep_histogram(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        calls = []

        def flaky():
            calls.append(None)
            if len(calls) < 3:
                raise TransientError("reset")
            return "ok"

        policy = RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0)
        result = call_with_retries(
            flaky, policy=policy, sleep=lambda _: None, metrics=registry
        )
        assert result == "ok"
        snap = registry.snapshot()
        assert snap.counter("retry.attempts") == 3
        assert snap.counter("retry.retries") == 2
        assert snap.counter("retry.exhausted") == 0
        hist = snap.histogram("retry.sleep_seconds")
        assert hist is not None and hist.count == 2
        assert hist.total == pytest.approx(0.01 + 0.02)

    def test_exhaustion_counter(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()

        def always_fails():
            raise TransientError("down")

        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(TransientError):
            call_with_retries(
                always_fails, policy=policy, sleep=lambda _: None,
                metrics=registry,
            )
        snap = registry.snapshot()
        assert snap.counter("retry.attempts") == 3
        assert snap.counter("retry.retries") == 2
        assert snap.counter("retry.exhausted") == 1

    def test_concurrent_retrying_backends_share_one_registry(self):
        # Many threads hammering flaky backends must land every attempt
        # in the shared registry without losing increments (the registry
        # lock is the only synchronization).
        import threading

        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        threads = 8
        per_thread = 5
        errors = []

        def worker():
            backend = RetryingBackend(
                FaultInjectingBackend(SQLiteBackend(), FaultPlan.failing(0)),
                policy,
                sleep=lambda _: None,
                metrics=registry,
            )
            try:
                backend.execute("CREATE TABLE t (a)")
                for _ in range(per_thread - 1):
                    backend.execute("SELECT 1")
            except StorageError as error:
                errors.append(error)
            finally:
                backend.close()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30)
        assert not errors
        snap = registry.snapshot()
        # failing(0) faults each backend's first data statement exactly
        # once: per thread that is 5 statements + 1 retry = 6 attempts,
        # and the shared registry must not lose a single increment.
        assert snap.counter("retry.attempts") == threads * (per_thread + 1)
        assert snap.counter("retry.retries") == threads
        assert snap.counter("retry.exhausted") == 0

    def test_retrying_backend_still_counts_instance_retries(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        backend = RetryingBackend(
            FaultInjectingBackend(SQLiteBackend(), FaultPlan.failing(0)),
            RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            sleep=lambda _: None,
            metrics=registry,
        )
        backend.execute("CREATE TABLE t (a)")
        assert backend.retries == 1
        assert registry.snapshot().counter("retry.retries") == 1
        backend.close()
