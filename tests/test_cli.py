"""End-to-end tests of the command-line interface."""

import importlib.util

import pytest

from repro.cli import main
from repro.experiments import paper_example as pe
from repro.xmlmodel.serializer import serialize

HAS_LXML = importlib.util.find_spec("lxml") is not None


KEYS_TEXT = """
K1 = (., (//book, {@isbn}))
K2 = (//book, (chapter, {@number}))
K3 = (//book, (title, {}))
K4 = (//book/chapter, (name, {}))
K7 = (//book, (author/contact, {}))
"""

TRANSFORM_TEXT = """
table book
  var xa <- xr : //book
  var x1 <- xa : @isbn
  var x2 <- xa : title
  field isbn  = value(x1)
  field title = value(x2)

table chapter
  var ya <- xr : //book
  var y1 <- ya : @isbn
  var yc <- ya : chapter
  var y2 <- yc : @number
  var y3 <- yc : name
  field inBook = value(y1)
  field number = value(y2)
  field name   = value(y3)
"""


@pytest.fixture()
def workspace(tmp_path):
    keys_file = tmp_path / "keys.txt"
    keys_file.write_text(KEYS_TEXT)
    transform_file = tmp_path / "rules.dsl"
    transform_file.write_text(TRANSFORM_TEXT)
    xml_file = tmp_path / "figure1.xml"
    xml_file.write_text(serialize(pe.figure1_document(), xml_declaration=True))
    return {"keys": str(keys_file), "transform": str(transform_file), "xml": str(xml_file)}


class TestCheckCommand:
    def test_propagated_fd_exits_zero(self, workspace, capsys):
        code = main(
            [
                "check",
                "--keys", workspace["keys"],
                "--transform", workspace["transform"],
                "--relation", "chapter",
                "--fd", "inBook, number -> name",
            ]
        )
        assert code == 0
        assert "PROPAGATED" in capsys.readouterr().out

    def test_unpropagated_fd_exits_one(self, workspace, capsys):
        code = main(
            [
                "check",
                "--keys", workspace["keys"],
                "--transform", workspace["transform"],
                "--relation", "chapter",
                "--fd", "number -> name",
            ]
        )
        assert code == 1
        assert "NOT propagated" in capsys.readouterr().out

    def test_declared_key_mode(self, workspace, capsys):
        code = main(
            [
                "check",
                "--keys", workspace["keys"],
                "--transform", workspace["transform"],
                "--relation", "chapter",
                "--key", "inBook,number",
            ]
        )
        assert code == 0
        assert "guaranteed" in capsys.readouterr().out

    def test_missing_fd_and_key_is_usage_error(self, workspace, capsys):
        code = main(
            [
                "check",
                "--keys", workspace["keys"],
                "--transform", workspace["transform"],
                "--relation", "chapter",
            ]
        )
        assert code == 2

    def test_unknown_relation_reports_error(self, workspace, capsys):
        code = main(
            [
                "check",
                "--keys", workspace["keys"],
                "--transform", workspace["transform"],
                "--relation", "nope",
                "--fd", "a -> b",
            ]
        )
        assert code == 2

    def test_missing_file_reports_error(self, workspace):
        code = main(
            [
                "check",
                "--keys", "/does/not/exist.txt",
                "--transform", workspace["transform"],
                "--relation", "chapter",
                "--fd", "number -> name",
            ]
        )
        assert code == 2


class TestCoverCommand:
    def test_cover_printed(self, workspace, capsys):
        code = main(
            [
                "cover",
                "--keys", workspace["keys"],
                "--transform", workspace["transform"],
                "--relation", "chapter",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "inBook, number -> name" in out

    def test_empty_cover_message(self, workspace, tmp_path, capsys):
        empty_keys = tmp_path / "none.txt"
        empty_keys.write_text("# no keys\n")
        code = main(
            [
                "cover",
                "--keys", str(empty_keys),
                "--transform", workspace["transform"],
                "--relation", "chapter",
            ]
        )
        assert code == 0
        assert "no functional dependencies" in capsys.readouterr().out


class TestDesignCommand:
    def test_design_with_sql(self, workspace, capsys):
        code = main(
            [
                "design",
                "--keys", workspace["keys"],
                "--transform", workspace["transform"],
                "--relation", "chapter",
                "--sql",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Minimum cover" in out
        assert "CREATE TABLE" in out

    def test_3nf_option(self, workspace, capsys):
        code = main(
            [
                "design",
                "--keys", workspace["keys"],
                "--transform", workspace["transform"],
                "--relation", "chapter",
                "--normal-form", "3NF",
            ]
        )
        assert code == 0


class TestShredCommand:
    def test_tables_printed_and_keys_validated(self, workspace, capsys):
        code = main(
            [
                "shred",
                "--transform", workspace["transform"],
                "--xml", workspace["xml"],
                "--keys", workspace["keys"],
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "satisfies all" in out
        assert "Introduction" in out

    def test_sql_mode(self, workspace, capsys):
        code = main(
            ["shred", "--transform", workspace["transform"], "--xml", workspace["xml"], "--sql"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "INSERT INTO" in out

    def test_violated_keys_reported(self, workspace, tmp_path, capsys):
        bad_xml = tmp_path / "bad.xml"
        bad_xml.write_text("<r><book isbn='1'/><book isbn='1'/></r>")
        code = main(
            [
                "shred",
                "--transform", workspace["transform"],
                "--xml", str(bad_xml),
                "--keys", workspace["keys"],
            ]
        )
        assert code == 1
        assert "key violated" in capsys.readouterr().out


class TestCheckDocCommand:
    def test_streaming_and_dom_agree(self, workspace, capsys):
        stream_code = main(["check-doc", "--keys", workspace["keys"], "--xml", workspace["xml"]])
        stream_out = capsys.readouterr().out
        dom_code = main(
            ["check-doc", "--keys", workspace["keys"], "--xml", workspace["xml"], "--dom"]
        )
        dom_out = capsys.readouterr().out
        assert stream_code == dom_code
        assert stream_out == dom_out

    def test_dom_and_jobs_are_mutually_exclusive(self, workspace):
        with pytest.raises(SystemExit):
            main(
                [
                    "check-doc",
                    "--keys", workspace["keys"],
                    "--xml", workspace["xml"],
                    "--dom",
                    "--jobs", "2",
                ]
            )


class TestParallelPlane:
    """--jobs must not change a single output byte."""

    def test_shred_jobs_output_identical(self, workspace, capsys):
        serial_code = main(
            [
                "shred",
                "--transform", workspace["transform"],
                "--xml", workspace["xml"],
                "--keys", workspace["keys"],
                "--stream",
            ]
        )
        serial_out = capsys.readouterr().out
        parallel_code = main(
            [
                "shred",
                "--transform", workspace["transform"],
                "--xml", workspace["xml"],
                "--keys", workspace["keys"],
                "--jobs", "2",
            ]
        )
        parallel_out = capsys.readouterr().out
        assert parallel_code == serial_code
        assert parallel_out == serial_out

    def test_check_doc_jobs_output_identical(self, workspace, tmp_path, capsys):
        bad_xml = tmp_path / "bad.xml"
        bad_xml.write_text(
            "<r><book isbn='1'><chapter number='1'/><chapter number='1'/></book>"
            "<book isbn='1'/><book/></r>"
        )
        serial_code = main(["check-doc", "--keys", workspace["keys"], "--xml", str(bad_xml)])
        serial_out = capsys.readouterr().out
        parallel_code = main(
            ["check-doc", "--keys", workspace["keys"], "--xml", str(bad_xml), "--jobs", "2"]
        )
        parallel_out = capsys.readouterr().out
        assert serial_code == parallel_code == 1
        assert parallel_out == serial_out

    def test_jobs_env_variable_is_honoured(self, workspace, capsys, monkeypatch):
        serial_code = main(["check-doc", "--keys", workspace["keys"], "--xml", workspace["xml"]])
        serial_out = capsys.readouterr().out
        monkeypatch.setenv("REPRO_JOBS", "2")
        env_code = main(["check-doc", "--keys", workspace["keys"], "--xml", workspace["xml"]])
        env_out = capsys.readouterr().out
        assert env_code == serial_code
        assert env_out == serial_out


class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_module_entry_point_importable(self):
        import repro.__main__  # noqa: F401  (import must not execute main)


VIOLATING_XML = """<bib>
  <book isbn="999">
    <title>Dup</title>
    <chapter number="7"><name>First</name></chapter>
    <chapter number="7"><name>Second</name></chapter>
  </book>
</bib>
"""


@pytest.fixture()
def violating_workspace(workspace, tmp_path):
    bad_xml = tmp_path / "violating.xml"
    bad_xml.write_text(VIOLATING_XML)
    workspace["bad_xml"] = str(bad_xml)
    workspace["db"] = str(tmp_path / "out.db")
    return workspace


class TestLoadCommand:
    def test_clean_strict_load(self, violating_workspace, capsys):
        ws = violating_workspace
        code = main(
            [
                "load",
                "--transform", ws["transform"],
                "--xml", ws["xml"],
                "--db", ws["db"],
                "--keys", ws["keys"],
                "--verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chapter:" in out
        assert "satisfies all propagated keys" in out

    def test_strict_load_rejects_violating_document(self, violating_workspace, capsys):
        ws = violating_workspace
        code = main(
            [
                "load",
                "--transform", ws["transform"],
                "--xml", ws["bad_xml"],
                "--db", ws["db"],
                "--keys", ws["keys"],
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "load rejected" in out
        assert "Second" in out  # the exact violating row is printed

    def test_log_mode_with_verify_finds_violations(self, violating_workspace, capsys):
        ws = violating_workspace
        code = main(
            [
                "load",
                "--transform", ws["transform"],
                "--xml", ws["bad_xml"],
                "--db", ws["db"],
                "--keys", ws["keys"],
                "--mode", "log",
                "--verify",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "violates its keys" in out
        assert "value-conflict" in out

    def test_log_mode_without_verify_stages_quietly(self, violating_workspace, capsys):
        ws = violating_workspace
        code = main(
            [
                "load",
                "--transform", ws["transform"],
                "--xml", ws["bad_xml"],
                "--db", ws["db"],
                "--keys", ws["keys"],
                "--mode", "log",
            ]
        )
        assert code == 0

    def test_corpus_gets_provenance_column(self, violating_workspace, capsys):
        ws = violating_workspace
        code = main(
            [
                "load",
                "--transform", ws["transform"],
                "--xml", ws["xml"],
                "--xml", ws["bad_xml"],
                "--db", ws["db"],
                "--keys", ws["keys"],
                "--mode", "log",
            ]
        )
        assert code == 0
        code = main(["query", "--db", ws["db"], "--sql",
                     'SELECT DISTINCT "_document" FROM "chapter" ORDER BY 1'])
        assert code == 0
        out = capsys.readouterr().out
        assert ws["xml"] in out and ws["bad_xml"] in out

    def test_parallel_load(self, violating_workspace, capsys):
        ws = violating_workspace
        code = main(
            [
                "load",
                "--transform", ws["transform"],
                "--xml", ws["xml"],
                "--db", ws["db"],
                "--keys", ws["keys"],
                "--jobs", "2",
            ]
        )
        assert code == 0

    def test_log_mode_into_strict_database_is_usage_error(self, violating_workspace, capsys):
        ws = violating_workspace
        base = ["load", "--transform", ws["transform"], "--xml", ws["xml"],
                "--db", ws["db"], "--keys", ws["keys"]]
        assert main(base) == 0  # creates a strict-mode database
        # Staging into it hits the strict constraints: usage error, not a
        # violation report and not a traceback.
        assert main(base + ["--mode", "log"]) == 2
        assert "does not expect" in capsys.readouterr().err

    def test_reloading_into_existing_database_appends(self, violating_workspace, capsys):
        """The README walkthrough reuses one --db across invocations."""
        ws = violating_workspace
        argv = ["load", "--transform", ws["transform"], "--xml", ws["xml"],
                "--db", ws["db"], "--keys", ws["keys"], "--mode", "log"]
        assert main(argv) == 0
        assert main(argv) == 0  # second run must not crash on CREATE TABLE
        capsys.readouterr()
        assert main(["query", "--db", ws["db"]]) == 0
        assert "chapter: 6 rows" in capsys.readouterr().out


class TestQueryCommand:
    @pytest.fixture()
    def loaded_db(self, violating_workspace):
        ws = violating_workspace
        assert main(
            [
                "load",
                "--transform", ws["transform"],
                "--xml", ws["xml"],
                "--db", ws["db"],
                "--keys", ws["keys"],
            ]
        ) == 0
        return ws

    def test_lists_tables_by_default(self, loaded_db, capsys):
        capsys.readouterr()
        assert main(["query", "--db", loaded_db["db"]]) == 0
        assert "chapter: 3 rows" in capsys.readouterr().out

    def test_table_dump_with_limit(self, loaded_db, capsys):
        capsys.readouterr()
        code = main(["query", "--db", loaded_db["db"], "--table", "chapter",
                     "--limit", "2"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out[0].split("\t") == ["inBook", "number", "name"]
        assert len(out) == 3  # header + 2 rows

    def test_arbitrary_sql(self, loaded_db, capsys):
        capsys.readouterr()
        code = main(["query", "--db", loaded_db["db"], "--sql",
                     'SELECT COUNT(*) FROM "chapter"'])
        assert code == 0
        assert "3" in capsys.readouterr().out

    def test_missing_database_is_usage_error(self, tmp_path):
        assert main(["query", "--db", str(tmp_path / "absent.db")]) == 2

    def test_sql_and_table_together_is_usage_error(self, loaded_db):
        assert main(["query", "--db", loaded_db["db"], "--sql", "SELECT 1",
                     "--table", "chapter"]) == 2

    def test_bad_sql_is_usage_error(self, loaded_db):
        assert main(["query", "--db", loaded_db["db"], "--sql", "SELEC oops"]) == 2

    def test_unknown_table_is_usage_error(self, loaded_db):
        assert main(["query", "--db", loaded_db["db"], "--table", "nope"]) == 2

    def test_limit_without_table_is_usage_error(self, loaded_db):
        assert main(["query", "--db", loaded_db["db"], "--sql", "SELECT 1",
                     "--limit", "2"]) == 2


class TestExitCodes:
    """The uniform exit-code contract: 0 = holds, 1 = violations, 2 = usage."""

    def test_check_doc_violations_exit_one(self, violating_workspace):
        ws = violating_workspace
        assert main(["check-doc", "--keys", ws["keys"], "--xml", ws["bad_xml"]]) == 1

    def test_check_doc_clean_exit_zero(self, violating_workspace):
        ws = violating_workspace
        assert main(["check-doc", "--keys", ws["keys"], "--xml", ws["xml"]]) == 0

    def test_shred_violations_exit_one(self, violating_workspace):
        ws = violating_workspace
        assert main(["shred", "--transform", ws["transform"],
                     "--xml", ws["bad_xml"], "--keys", ws["keys"]]) == 1

    def test_load_violations_exit_one(self, violating_workspace):
        ws = violating_workspace
        assert main(["load", "--transform", ws["transform"],
                     "--xml", ws["bad_xml"], "--db", ws["db"],
                     "--keys", ws["keys"]]) == 1

    @pytest.mark.parametrize("command", ["check-doc", "shred", "load"])
    def test_missing_file_exit_two(self, violating_workspace, command):
        ws = violating_workspace
        argv = {
            "check-doc": ["check-doc", "--keys", ws["keys"], "--xml", "/absent.xml"],
            "shred": ["shred", "--transform", ws["transform"], "--xml", "/absent.xml"],
            "load": ["load", "--transform", ws["transform"], "--xml", "/absent.xml",
                     "--db", ws["db"]],
        }[command]
        assert main(argv) == 2

    @pytest.mark.parametrize("command", ["check-doc", "shred", "load"])
    def test_malformed_xml_exit_two(self, violating_workspace, tmp_path, command):
        ws = violating_workspace
        broken = tmp_path / "broken.xml"
        broken.write_text("<a><b></a>")
        argv = {
            "check-doc": ["check-doc", "--keys", ws["keys"], "--xml", str(broken)],
            "shred": ["shred", "--transform", ws["transform"], "--xml", str(broken)],
            "load": ["load", "--transform", ws["transform"], "--xml", str(broken),
                     "--db", ws["db"]],
        }[command]
        assert main(argv) == 2

    def test_argparse_usage_error_exit_two(self):
        with pytest.raises(SystemExit) as info:
            main(["load"])  # missing required arguments
        assert info.value.code == 2

    @pytest.mark.parametrize("engine", ["auto", "pure", "accel", "expat"])
    def test_tokenizer_backends_agree_on_exit_and_output(
        self, violating_workspace, capsys, engine
    ):
        # The tokenizer backend is an executor choice: every backend must
        # produce the same report and the same exit code.
        ws = violating_workspace
        argv = ["shred", "--transform", ws["transform"], "--xml", ws["bad_xml"],
                "--keys", ws["keys"], "--tokenizer"]
        assert main(argv + ["pure"]) == 1
        pure_out = capsys.readouterr().out
        assert main(argv + [engine]) == 1
        assert capsys.readouterr().out == pure_out

    @pytest.mark.skipif(HAS_LXML, reason="lxml is installed here")
    @pytest.mark.parametrize("command", ["check-doc", "shred", "load"])
    def test_unavailable_tokenizer_exit_two(self, violating_workspace, command):
        ws = violating_workspace
        argv = {
            "check-doc": ["check-doc", "--keys", ws["keys"], "--xml", ws["xml"]],
            "shred": ["shred", "--transform", ws["transform"], "--xml", ws["xml"]],
            "load": ["load", "--transform", ws["transform"], "--xml", ws["xml"],
                     "--db", ws["db"]],
        }[command]
        assert main(argv + ["--tokenizer", "lxml"]) == 2

    def test_unknown_tokenizer_is_an_argparse_error(self, violating_workspace):
        ws = violating_workspace
        with pytest.raises(SystemExit) as info:
            main(["check-doc", "--keys", ws["keys"], "--xml", ws["xml"],
                  "--tokenizer", "bogus"])
        assert info.value.code == 2


class TestBackendSelection:
    """--backend / REPRO_BACKEND route load and query to an engine."""

    def test_fake_postgres_load_and_verify(self, violating_workspace, capsys):
        ws = violating_workspace
        code = main(
            ["load", "--transform", ws["transform"], "--xml", ws["xml"],
             "--db", ":memory:", "--backend", "fake-postgres",
             "--keys", ws["keys"], "--verify"]
        )
        assert code == 0
        assert "satisfies all propagated keys" in capsys.readouterr().out

    def test_fake_postgres_rejects_violations_like_sqlite(
        self, violating_workspace, capsys
    ):
        ws = violating_workspace
        argv = ["load", "--transform", ws["transform"], "--xml", ws["bad_xml"],
                "--keys", ws["keys"]]
        assert main(argv + ["--db", ws["db"]]) == 1
        sqlite_out = capsys.readouterr().out
        assert main(argv + ["--db", ":memory:", "--backend", "fake-postgres"]) == 1
        assert capsys.readouterr().out == sqlite_out

    def test_unknown_backend_flag_exit_two(self, violating_workspace, capsys):
        ws = violating_workspace
        code = main(
            ["load", "--transform", ws["transform"], "--xml", ws["xml"],
             "--db", ws["db"], "--backend", "oracle"]
        )
        assert code == 2
        assert "unknown storage backend" in capsys.readouterr().err

    def test_query_backend_flag(self, violating_workspace, capsys):
        ws = violating_workspace
        assert main(["load", "--transform", ws["transform"], "--xml", ws["xml"],
                     "--db", ws["db"], "--keys", ws["keys"]]) == 0
        capsys.readouterr()
        assert main(["query", "--db", ws["db"]]) == 0
        assert "book" in capsys.readouterr().out

    def test_serve_rejects_unknown_backend_before_binding(self, capsys):
        assert main(["serve", "--backend", "oracle"]) == 2
        assert "unknown storage backend" in capsys.readouterr().err


class TestEnvironmentErrors:
    """Malformed environment variables are uniform usage errors (exit 2)."""

    def test_malformed_repro_jobs_exit_two(
        self, violating_workspace, capsys, monkeypatch
    ):
        ws = violating_workspace
        monkeypatch.setenv("REPRO_JOBS", "abc")
        code = main(["shred", "--transform", ws["transform"],
                     "--xml", ws["xml"], "--stream"])
        assert code == 2
        assert "REPRO_JOBS" in capsys.readouterr().err

    def test_malformed_repro_tokenizer_exit_two(
        self, violating_workspace, capsys, monkeypatch
    ):
        ws = violating_workspace
        monkeypatch.setenv("REPRO_TOKENIZER", "bogus")
        code = main(["check-doc", "--keys", ws["keys"], "--xml", ws["xml"]])
        assert code == 2
        assert "tokenizer" in capsys.readouterr().err

    def test_malformed_repro_backend_exit_two(
        self, violating_workspace, capsys, monkeypatch
    ):
        ws = violating_workspace
        monkeypatch.setenv("REPRO_BACKEND", "oracle")
        code = main(["load", "--transform", ws["transform"], "--xml", ws["xml"],
                     "--db", ws["db"]])
        assert code == 2
        assert "unknown storage backend" in capsys.readouterr().err


class TestCrashPaths:
    """Ctrl-C and a hung-up stdout reader exit cleanly, not with tracebacks."""

    def test_keyboard_interrupt_exits_130(self, violating_workspace, monkeypatch):
        ws = violating_workspace

        def interrupted(path):
            raise KeyboardInterrupt()

        monkeypatch.setattr("repro.cli._read", interrupted)
        code = main(["check-doc", "--keys", ws["keys"], "--xml", ws["xml"]])
        assert code == 130

    def test_broken_pipe_exits_141(self, violating_workspace, monkeypatch):
        ws = violating_workspace

        def hung_up(path):
            raise BrokenPipeError()

        monkeypatch.setattr("repro.cli._read", hung_up)
        # Stub the fd-level silencing: it would stomp pytest's capture of
        # fd 1 (the subprocess test below exercises the real thing).
        monkeypatch.setattr("repro.cli._silence_stdout", lambda: None)
        code = main(["check-doc", "--keys", ws["keys"], "--xml", ws["xml"]])
        assert code == 141

    def test_real_pipe_hangup_has_no_traceback(self, violating_workspace):
        # `repro query … | head -1`-shaped: the reader closes after one
        # line while thousands remain; the process must exit 141 with an
        # empty stderr instead of printing BrokenPipeError twice.
        import os
        import subprocess
        import sys

        import repro

        ws = violating_workspace
        assert main(["load", "--transform", ws["transform"], "--xml", ws["xml"],
                     "--db", ws["db"], "--keys", ws["keys"]]) == 0
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = {**os.environ, "PYTHONPATH": src}
        big = 'WITH RECURSIVE n(i) AS (SELECT 1 UNION ALL SELECT i+1 FROM n LIMIT 100000) SELECT i FROM n'
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "query", "--db", ws["db"], "--sql", big],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        )
        process.stdout.readline()
        process.stdout.close()
        code = process.wait(timeout=60)
        stderr = process.stderr.read().decode()
        process.stderr.close()
        assert code == 141, stderr
        assert stderr == ""


class TestStatsFlags:
    """PR-10: ``--stats`` / ``--stats-json`` print telemetry on stderr
    while stdout stays byte-identical to an uninstrumented run."""

    def test_stats_prints_table_on_stderr_only(self, workspace, capsys):
        ws = workspace
        argv = ["check-doc", "--keys", ws["keys"], "--xml", ws["xml"]]
        code = main(argv)
        plain = capsys.readouterr()
        assert main(argv + ["--stats"]) == code
        stats = capsys.readouterr()
        assert stats.out == plain.out
        assert plain.err == ""
        assert "pipeline.events" in stats.err
        assert "check.violations" in stats.err
        assert "metric" in stats.err  # the table header

    def test_stats_json_emits_the_stable_schema(self, workspace, capsys):
        import json

        ws = workspace
        code = main(
            ["shred", "--stream", "--transform", ws["transform"],
             "--xml", ws["xml"], "--stats-json"]
        )
        assert code == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.err)
        assert doc["schema"] == "repro-stats/1"
        counters = {c["name"]: c for c in doc["counters"]}
        assert counters["pipeline.events"]["value"] > 0
        rows = [c for c in doc["counters"] if c["name"] == "shred.rows"]
        assert {r["labels"]["relation"] for r in rows} == {"book", "chapter"}

    def test_stats_flags_are_mutually_exclusive(self, workspace, capsys):
        ws = workspace
        with pytest.raises(SystemExit) as excinfo:
            main(["check-doc", "--keys", ws["keys"], "--xml", ws["xml"],
                  "--stats", "--stats-json"])
        assert excinfo.value.code == 2

    def test_stats_does_not_leak_the_telemetry_switch(self, workspace):
        from repro import obs

        ws = workspace
        assert not obs.enabled()
        main(["check-doc", "--keys", ws["keys"], "--xml", ws["xml"],
              "--stats"])
        assert not obs.enabled()

    def test_stats_with_violations_keeps_exit_code(
        self, violating_workspace, capsys
    ):
        ws = violating_workspace
        code = main(
            ["check-doc", "--keys", ws["keys"], "--xml", ws["bad_xml"],
             "--stats"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "key violated" in captured.out
        assert "check.violations" in captured.err


class TestVerbosityFlags:
    """PR-10: structured logging replaces ad-hoc stderr prints; the
    default level keeps stderr quiet, ``-v`` narrates, errors always
    show (same text, same exit codes, pinned above)."""

    def test_default_run_keeps_stderr_empty(self, workspace, capsys):
        ws = workspace
        assert main(
            ["check-doc", "--keys", ws["keys"], "--xml", ws["xml"]]
        ) == 0
        assert capsys.readouterr().err == ""

    def test_verbose_narrates_on_stderr(self, workspace, capsys):
        ws = workspace
        assert main(
            ["-v", "check-doc", "--keys", ws["keys"], "--xml", ws["xml"]]
        ) == 0
        captured = capsys.readouterr()
        assert "checked" in captured.err
        assert "violation(s)" in captured.err
        assert "checked" not in captured.out

    def test_verbose_shred_and_load_narrate(self, violating_workspace, capsys):
        ws = violating_workspace
        assert main(
            ["-v", "shred", "--transform", ws["transform"], "--xml", ws["xml"]]
        ) == 0
        assert "shredded 2 relation(s)" in capsys.readouterr().err
        assert main(
            ["-v", "load", "--transform", ws["transform"], "--xml", ws["xml"],
             "--db", ws["db"], "--keys", ws["keys"]]
        ) == 0
        assert "load finished" in capsys.readouterr().err

    def test_quiet_still_shows_errors(self, workspace, tmp_path, capsys):
        ws = workspace
        code = main(
            ["-q", "check-doc", "--keys", ws["keys"],
             "--xml", str(tmp_path / "missing.xml")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_errors_show_without_any_flag(self, workspace, tmp_path, capsys):
        ws = workspace
        code = main(
            ["check-doc", "--keys", ws["keys"],
             "--xml", str(tmp_path / "missing.xml")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
