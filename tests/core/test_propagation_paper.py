"""Algorithm ``propagation`` on the paper's own examples (Section 4)."""

import pytest

from repro.core.propagation import check_propagation, propagated_fds
from repro.keys.key import parse_keys


class TestExample42:
    """Example 4.2: the two FD checks traced in the paper."""

    def test_isbn_determines_contact_on_book(self, paper_keys, sigma):
        result = check_propagation(paper_keys, sigma.rule("book"), "isbn -> contact")
        assert result.holds
        assert result.identified and result.existence_ok

    def test_section_key_not_propagated(self, paper_keys, sigma):
        result = check_propagation(
            paper_keys, sigma.rule("section"), "inChapt, number -> name"
        )
        assert not result.holds
        assert not result.identified

    def test_traces_are_informative(self, paper_keys, sigma):
        result = check_propagation(paper_keys, sigma.rule("book"), "isbn -> contact")
        text = result.explain()
        assert "PROPAGATED" in text
        assert "keyed" in text


class TestIntroductionExample:
    """Example 1.1: the initial vs refined Chapter designs."""

    def test_initial_design_key_not_guaranteed(self, paper_keys):
        from repro.experiments.paper_example import initial_chapter_design

        transformation, _ = initial_chapter_design()
        result = check_propagation(
            paper_keys,
            transformation.rule("Chapter"),
            "bookTitle, chapterNum -> chapterName",
        )
        assert not result.holds

    def test_refined_design_key_guaranteed(self, paper_keys):
        from repro.experiments.paper_example import refined_chapter_design

        transformation, _ = refined_chapter_design()
        result = check_propagation(
            paper_keys,
            transformation.rule("Chapter"),
            "isbn, chapterNum -> chapterName",
        )
        assert result.holds


class TestBookRelationFDs:
    def test_isbn_determines_title(self, paper_keys, sigma):
        assert check_propagation(paper_keys, sigma.rule("book"), "isbn -> title").holds

    def test_isbn_does_not_determine_author(self, paper_keys, sigma):
        # Example 1.2: a book may have several authors.
        assert not check_propagation(paper_keys, sigma.rule("book"), "isbn -> author").holds

    def test_title_does_not_determine_isbn(self, paper_keys, sigma):
        assert not check_propagation(paper_keys, sigma.rule("book"), "title -> isbn").holds

    def test_trivial_fd_propagates(self, paper_keys, sigma):
        assert check_propagation(paper_keys, sigma.rule("book"), "isbn -> isbn").holds

    def test_trivial_fd_with_unguaranteed_companion_fails_null_condition(self, paper_keys, sigma):
        # title ∈ {title, isbn} but a tuple may have a null title while isbn is
        # present?  No: condition (1) concerns the LHS; here LHS={isbn,title}:
        # if title is null the RHS title is null too, so the FD holds; but the
        # LHS field title is not attribute-backed, so the algorithm's
        # existence test rejects it conservatively only when title must be
        # non-null alongside a non-null RHS — for RHS=title this is fine.
        result = check_propagation(paper_keys, sigma.rule("book"), "isbn, title -> title")
        assert result.identified
        # RHS equals the problematic LHS field, hence no existence obligation.
        assert result.holds

    def test_nontrivial_rhs_with_element_lhs_rejected_by_existence(self, paper_keys, sigma):
        # LHS contains the element-defined field `title`, which is not
        # guaranteed non-null when `contact` is non-null (condition (1)).
        result = check_propagation(paper_keys, sigma.rule("book"), "isbn, title -> contact")
        assert result.identified
        assert not result.existence_ok
        assert not result.holds
        assert "title" in result.missing_existence

    def test_identification_only_mode(self, paper_keys, sigma):
        result = check_propagation(
            paper_keys, sigma.rule("book"), "isbn, title -> contact", check_existence=False
        )
        assert result.holds


class TestChapterRelationFDs:
    def test_inbook_number_determine_name(self, paper_keys, sigma):
        assert check_propagation(
            paper_keys, sigma.rule("chapter"), "inBook, number -> name"
        ).holds

    def test_number_alone_does_not(self, paper_keys, sigma):
        assert not check_propagation(paper_keys, sigma.rule("chapter"), "number -> name").holds

    def test_inbook_alone_does_not(self, paper_keys, sigma):
        assert not check_propagation(paper_keys, sigma.rule("chapter"), "inBook -> name").holds

    def test_multi_attribute_rhs(self, paper_keys, sigma):
        assert check_propagation(
            paper_keys, sigma.rule("chapter"), "inBook, number -> name, number"
        ).holds
        assert not check_propagation(
            paper_keys, sigma.rule("chapter"), "inBook -> name, number"
        ).holds


class TestErrorsAndBatch:
    def test_unknown_attribute_rejected(self, paper_keys, sigma):
        with pytest.raises(ValueError):
            check_propagation(paper_keys, sigma.rule("book"), "isbn -> publisher")

    def test_batch_helper_shares_engine(self, paper_keys, sigma):
        results = propagated_fds(
            paper_keys,
            sigma.rule("book"),
            ["isbn -> title", "isbn -> author", "isbn -> contact"],
        )
        assert [r.holds for r in results] == [True, False, True]

    def test_empty_key_set_means_nothing_propagates(self, sigma):
        assert not check_propagation([], sigma.rule("book"), "isbn -> title").holds

    def test_keys_without_names_work(self, sigma):
        keys = parse_keys(
            """
            (., (//book, {@isbn}))
            (//book, (title, {}))
            """
        )
        assert check_propagation(keys, sigma.rule("book"), "isbn -> title").holds
