"""Algorithm ``minimumCover`` — unit and paper-example tests (Section 5)."""

import pytest

from repro.core.minimum_cover import minimum_cover_from_keys
from repro.core.propagation import check_propagation
from repro.experiments.paper_example import EXPECTED_MINIMUM_COVER
from repro.keys.key import parse_keys
from repro.relational.fd import FunctionalDependency, equivalent, implies_fd
from repro.transform.dsl import parse_rule


class TestPaperExample31:
    def test_cover_matches_the_paper(self, paper_keys, universal):
        cover = minimum_cover_from_keys(paper_keys, universal)
        assert set(cover.cover) == set(EXPECTED_MINIMUM_COVER)

    def test_cover_is_nonredundant(self, paper_keys, universal):
        cover = minimum_cover_from_keys(paper_keys, universal).cover
        for fd in cover:
            others = [other for other in cover if other != fd]
            assert not implies_fd(others, fd)

    def test_every_generated_fd_is_individually_propagated(self, paper_keys, universal):
        result = minimum_cover_from_keys(paper_keys, universal)
        for fd in result.generated:
            check = check_propagation(
                paper_keys, universal.rule, fd, check_existence=False
            )
            assert check.holds, f"{fd} is not propagated"

    def test_candidate_keys_reported(self, paper_keys, universal):
        result = minimum_cover_from_keys(paper_keys, universal)
        # The chapter variable yc is keyed by {bookIsbn, chapNum}.
        chapter_candidates = result.candidate_keys["yc"]
        assert any(c.fields == frozenset({"bookIsbn", "chapNum"}) for c in chapter_candidates)
        assert result.representative["yc"] == frozenset({"bookIsbn", "chapNum"})

    def test_author_not_determined(self, paper_keys, universal):
        cover = minimum_cover_from_keys(paper_keys, universal).cover
        assert not implies_fd(cover, "bookIsbn -> bookAuthor")

    def test_require_existence_gives_same_cover_here(self, paper_keys, universal):
        default = minimum_cover_from_keys(paper_keys, universal)
        strict = minimum_cover_from_keys(paper_keys, universal, require_existence=True)
        assert equivalent(default.cover, strict.cover)

    def test_result_is_iterable_and_sized(self, paper_keys, universal):
        result = minimum_cover_from_keys(paper_keys, universal)
        assert len(result) == 4
        assert list(result) == result.cover
        assert "bookIsbn" in result.describe()


class TestAccepsRuleOrUniversal:
    def test_accepts_plain_table_rule(self, paper_keys, universal):
        from_rule = minimum_cover_from_keys(paper_keys, universal.rule)
        from_universal = minimum_cover_from_keys(paper_keys, universal)
        assert set(from_rule.cover) == set(from_universal.cover)


class TestSmallSchemas:
    def test_single_absolute_key(self):
        rule = parse_rule(
            """
            universal U
              var p <- xr : //product
              var s <- p  : @sku
              var n <- p  : name
              field sku  = value(s)
              field name = value(n)
            """
        )
        keys = parse_keys(
            """
            (., (//product, {@sku}))
            (//product, (name, {}))
            """
        )
        cover = minimum_cover_from_keys(keys, rule).cover
        assert cover == [FunctionalDependency({"sku"}, {"name"})]

    def test_without_uniqueness_key_nothing_is_determined(self):
        rule = parse_rule(
            """
            universal U
              var p <- xr : //product
              var s <- p  : @sku
              var n <- p  : name
              field sku  = value(s)
              field name = value(n)
            """
        )
        keys = parse_keys("(., (//product, {@sku}))")
        # A product may have several <name> children, so sku -> name is not
        # guaranteed without the at-most-one constraint.
        assert minimum_cover_from_keys(keys, rule).cover == []

    def test_alternate_keys_of_the_same_node_become_equivalent(self):
        rule = parse_rule(
            """
            universal U
              var b <- xr : //book
              var i <- b  : @isbn
              var j <- b  : @isbn13
              var t <- b  : title
              field isbn   = value(i)
              field isbn13 = value(j)
              field title  = value(t)
            """
        )
        keys = parse_keys(
            """
            (., (//book, {@isbn}))
            (., (//book, {@isbn13}))
            (//book, (title, {}))
            """
        )
        cover = minimum_cover_from_keys(keys, rule).cover
        assert implies_fd(cover, "isbn -> isbn13")
        assert implies_fd(cover, "isbn13 -> isbn")
        assert implies_fd(cover, "isbn -> title")
        assert implies_fd(cover, "isbn13 -> title")

    def test_multi_attribute_key(self):
        rule = parse_rule(
            """
            universal U
              var c <- xr : //conf
              var a <- c  : @acr
              var y <- c  : @year
              var n <- c  : name
              field acr  = value(a)
              field year = value(y)
              field name = value(n)
            """
        )
        keys = parse_keys(
            """
            (., (//conf, {@acr, @year}))
            (//conf, (name, {}))
            """
        )
        cover = minimum_cover_from_keys(keys, rule).cover
        assert implies_fd(cover, "acr, year -> name")
        assert not implies_fd(cover, "acr -> name")

    def test_key_skipping_an_intermediate_level(self):
        # Sections are keyed *within a book* directly (skipping chapters).
        rule = parse_rule(
            """
            universal U
              var b  <- xr : //book
              var bi <- b  : @isbn
              var c  <- b  : chapter
              var cn <- c  : @num
              var s  <- c  : section
              var sid<- s  : @sid
              var sn <- s  : name
              field isbn   = value(bi)
              field chapNum= value(cn)
              field secId  = value(sid)
              field secName= value(sn)
            """
        )
        keys = parse_keys(
            """
            (., (//book, {@isbn}))
            (//book, (chapter, {@num}))
            (//book, (chapter/section, {@sid}))
            (//book/chapter/section, (name, {}))
            """
        )
        cover = minimum_cover_from_keys(keys, rule).cover
        # Both the chapter-based and the book-based identifications hold.
        assert implies_fd(cover, "isbn, secId -> secName")
        assert implies_fd(cover, "isbn, chapNum, secId -> secName")
        assert not implies_fd(cover, "secId -> secName")

    def test_fields_of_unkeyed_branches_do_not_appear(self, paper_keys):
        rule = parse_rule(
            """
            universal U
              var b <- xr : //book
              var i <- b  : @isbn
              var r <- b  : review
              var rn<- r  : note
              field isbn = value(i)
              field note = value(rn)
            """
        )
        cover = minimum_cover_from_keys(paper_keys, rule).cover
        # reviews are not keyed / not unique, so nothing determines `note`.
        assert not implies_fd(cover, "isbn -> note")

    def test_empty_key_set(self, universal):
        assert minimum_cover_from_keys([], universal).cover == []


class TestStatistics:
    def test_implication_queries_counted(self, paper_keys, universal):
        result = minimum_cover_from_keys(paper_keys, universal)
        assert result.implication_queries > 0


class TestEngineRegression:
    """The FD-engine swap must not change minimum-cover output at all.

    Pins the exact, ordered cover of the paper's Section 5 running example
    (Example 3.1) under both relational FD engines — a silent behavioural
    drift in either engine fails this before any property test runs.
    """

    PINNED_COVER = [
        FunctionalDependency({"bookIsbn"}, {"bookTitle"}),
        FunctionalDependency({"bookIsbn"}, {"authContact"}),
        FunctionalDependency({"bookIsbn", "chapNum"}, {"chapName"}),
        FunctionalDependency({"bookIsbn", "chapNum", "secNum"}, {"secName"}),
    ]

    def test_bitset_engine_cover_is_pinned(self, paper_keys, universal):
        result = minimum_cover_from_keys(paper_keys, universal, fd_engine="bitset")
        assert result.cover == self.PINNED_COVER

    def test_frozenset_engine_cover_is_pinned(self, paper_keys, universal):
        result = minimum_cover_from_keys(paper_keys, universal, fd_engine="frozenset")
        assert result.cover == self.PINNED_COVER

    def test_pinned_cover_matches_paper_expectation(self):
        assert set(self.PINNED_COVER) == set(EXPECTED_MINIMUM_COVER)

    def test_result_implies_is_amortised_and_consistent(self, paper_keys, universal):
        result = minimum_cover_from_keys(paper_keys, universal)
        for fd in EXPECTED_MINIMUM_COVER:
            assert result.implies(fd, engine="bitset")
            assert result.implies(fd, engine="frozenset")
        assert not result.implies("bookIsbn -> bookAuthor")
