"""Consistency checking of predefined designs (Example 1.1 as an API)."""

import pytest

from repro.core.checking import check_instance, check_schema_consistency
from repro.experiments.paper_example import (
    initial_chapter_design,
    paper_schema,
    paper_transformation,
    refined_chapter_design,
)
from repro.relational.schema import DatabaseSchema, RelationSchema


class TestStaticConsistency:
    def test_initial_design_is_inconsistent(self, paper_keys):
        transformation, schema = initial_chapter_design()
        report = check_schema_consistency(paper_keys, transformation, schema)
        assert not report.consistent
        assert len(report.failures()) == 1
        assert report.failures()[0].key == frozenset({"bookTitle", "chapterNum"})

    def test_refined_design_is_consistent(self, paper_keys):
        transformation, schema = refined_chapter_design()
        report = check_schema_consistency(paper_keys, transformation, schema)
        assert report.consistent
        assert all(check.guaranteed for check in report.checks)

    def test_paper_schema_mixed_verdicts(self, paper_keys):
        # Example 4.2 / 1.2: chapter's key is guaranteed, book's key is not
        # (isbn does not determine author), section's key is not.
        report = check_schema_consistency(paper_keys, paper_transformation(), paper_schema())
        verdicts = {check.relation: check.guaranteed for check in report.checks}
        assert verdicts == {"book": False, "chapter": True, "section": False}

    def test_relations_without_rules_are_skipped(self, paper_keys):
        transformation, schema = refined_chapter_design()
        schema.add(RelationSchema("orphan", ["a"], keys=[{"a"}]))
        report = check_schema_consistency(paper_keys, transformation, schema)
        assert all(check.relation != "orphan" for check in report.checks)

    def test_key_spanning_all_attributes_is_trivially_guaranteed(self, paper_keys):
        transformation, _ = refined_chapter_design()
        schema = DatabaseSchema(
            [
                RelationSchema(
                    "Chapter",
                    ["isbn", "chapterNum", "chapterName"],
                    keys=[{"isbn", "chapterNum", "chapterName"}],
                )
            ]
        )
        report = check_schema_consistency(paper_keys, transformation, schema)
        assert report.consistent

    def test_describe_summarises(self, paper_keys):
        transformation, schema = initial_chapter_design()
        text = check_schema_consistency(paper_keys, transformation, schema).describe()
        assert "NOT guaranteed" in text
        assert "INCONSISTENT" in text


class TestDynamicInstanceCheck:
    def test_initial_design_violated_by_figure1(self, figure1):
        transformation, schema = initial_chapter_design()
        checks = check_instance(transformation, schema, figure1)
        assert not checks["Chapter"].ok
        assert checks["Chapter"].rows == 3

    def test_refined_design_clean_on_figure1(self, figure1):
        transformation, schema = refined_chapter_design()
        checks = check_instance(transformation, schema, figure1)
        assert checks["Chapter"].ok

    def test_violation_messages_name_the_offending_tuples(self, figure1):
        transformation, schema = initial_chapter_design()
        checks = check_instance(transformation, schema, figure1)
        assert any("agree on" in message for message in checks["Chapter"].key_violations)
