"""``GminimumCover`` — the cover-based propagation check must agree with
Algorithm ``propagation``."""

import pytest

from repro.core.gminimum_cover import gminimum_cover_check
from repro.core.minimum_cover import minimum_cover_from_keys
from repro.core.propagation import check_propagation
from repro.experiments.generators import generate_workload


PAPER_FDS = [
    ("book", "isbn -> title"),
    ("book", "isbn -> contact"),
    ("book", "isbn -> author"),
    ("book", "title -> isbn"),
    ("chapter", "inBook, number -> name"),
    ("chapter", "number -> name"),
    ("section", "inChapt, number -> name"),
]


class TestAgreementWithPropagation:
    @pytest.mark.parametrize("relation,fd", PAPER_FDS)
    def test_same_verdict_on_paper_relations(self, paper_keys, sigma, relation, fd):
        rule = sigma.rule(relation)
        direct = check_propagation(paper_keys, rule, fd)
        via_cover = gminimum_cover_check(paper_keys, rule, fd)
        assert direct.holds == via_cover.holds

    def test_same_verdict_on_universal_relation(self, paper_keys, universal):
        for fd in [
            "bookIsbn -> bookTitle",
            "bookIsbn -> bookAuthor",
            "bookIsbn, chapNum -> chapName",
            "chapNum -> chapName",
            "bookIsbn, chapNum, secNum -> secName",
            "secNum -> secName",
        ]:
            direct = check_propagation(paper_keys, universal.rule, fd)
            via_cover = gminimum_cover_check(paper_keys, universal.rule, fd)
            assert direct.holds == via_cover.holds, fd

    def test_agreement_on_synthetic_workload(self):
        workload = generate_workload(num_fields=9, depth=3, num_keys=8, seed=11)
        fd = workload.sample_fd()
        assert (
            check_propagation(workload.keys, workload.rule, fd).holds
            == gminimum_cover_check(workload.keys, workload.rule, fd).holds
        )


class TestAmortisation:
    def test_precomputed_cover_reused(self, paper_keys, universal):
        cover = minimum_cover_from_keys(paper_keys, universal)
        first = gminimum_cover_check(
            paper_keys, universal, "bookIsbn -> bookTitle", cover=cover
        )
        second = gminimum_cover_check(
            paper_keys, universal, "bookIsbn -> bookAuthor", cover=cover
        )
        assert first.holds and not second.holds

    def test_trace_mentions_cover_size(self, paper_keys, universal):
        result = gminimum_cover_check(paper_keys, universal, "bookIsbn -> bookTitle")
        assert any("minimum cover" in line for line in result.trace)

    def test_existence_condition_enforced(self, paper_keys, sigma):
        # Identified by the cover but rejected by the null/existence check.
        result = gminimum_cover_check(paper_keys, sigma.rule("book"), "isbn, title -> contact")
        assert result.identified
        assert not result.holds
        relaxed = gminimum_cover_check(
            paper_keys, sigma.rule("book"), "isbn, title -> contact", check_existence=False
        )
        assert relaxed.holds
