"""Adversarial / structural tests for Algorithm ``propagation``.

Beyond the paper's worked examples, these scenarios exercise the corners of
the algorithm: keys that skip intermediate levels, alternate keys, attribute
weakening, multi-attribute keys, descendant contexts, and the interplay of
the identification and existence conditions.
"""

import pytest

from repro.core.minimum_cover import minimum_cover_from_keys
from repro.core.naive import naive_minimum_cover
from repro.core.propagation import check_propagation
from repro.keys.key import parse_keys
from repro.relational.fd import equivalent, implies_fd
from repro.transform.dsl import parse_rule


def rule_library():
    """book(isbn) / chapter(num) / section(sid) universal-style rule."""
    return parse_rule(
        """
        universal U
          var b  <- xr : //book
          var bi <- b  : @isbn
          var bt <- b  : title
          var c  <- b  : chapter
          var cn <- c  : @num
          var cm <- c  : name
          var s  <- c  : section
          var si <- s  : @sid
          var sm <- s  : name
          field isbn    = value(bi)
          field title   = value(bt)
          field chapNum = value(cn)
          field chapName= value(cm)
          field secId   = value(si)
          field secName = value(sm)
        """
    )


class TestSkippingIntermediateLevels:
    KEYS = parse_keys(
        """
        (., (//book, {@isbn}))
        (//book, (chapter/section, {@sid}))
        (//book/chapter/section, (name, {}))
        """
    )

    def test_book_scoped_section_key_propagates_without_chapter_key(self):
        rule = rule_library()
        assert check_propagation(self.KEYS, rule, "isbn, secId -> secName").holds

    def test_chapter_fields_remain_undetermined(self):
        rule = rule_library()
        assert not check_propagation(self.KEYS, rule, "isbn, chapNum -> chapName").holds
        assert not check_propagation(self.KEYS, rule, "isbn -> chapNum").holds

    def test_section_key_relative_to_chapter_is_derived_by_target_to_context(self):
        # Even though the key is stated relative to book, the chain
        # book -> chapter -> section still works because target-to-context
        # pushes the context down.
        rule = rule_library()
        keys = self.KEYS + parse_keys("(//book, (chapter, {@num}))")
        assert check_propagation(keys, rule, "isbn, chapNum, secId -> secName").holds

    def test_cover_contains_the_skipping_fd(self):
        rule = rule_library()
        cover = minimum_cover_from_keys(self.KEYS, rule).cover
        assert implies_fd(cover, "isbn, secId -> secName")
        assert not implies_fd(cover, "secId -> secName")


class TestAlternateKeys:
    KEYS = parse_keys(
        """
        (., (//book, {@isbn}))
        (., (//book, {@doi}))
        (//book, (title, {}))
        """
    )

    RULE = parse_rule(
        """
        universal U
          var b <- xr : //book
          var i <- b  : @isbn
          var d <- b  : @doi
          var t <- b  : title
          field isbn  = value(i)
          field doi   = value(d)
          field title = value(t)
        """
    )

    def test_either_key_determines_title(self):
        assert check_propagation(self.KEYS, self.RULE, "isbn -> title").holds
        assert check_propagation(self.KEYS, self.RULE, "doi -> title").holds

    def test_keys_determine_each_other(self):
        assert check_propagation(self.KEYS, self.RULE, "isbn -> doi").holds
        assert check_propagation(self.KEYS, self.RULE, "doi -> isbn").holds

    def test_cover_is_equivalent_to_naive(self):
        fast = minimum_cover_from_keys(self.KEYS, self.RULE)
        slow = naive_minimum_cover(self.KEYS, self.RULE)
        assert equivalent(fast.cover, slow.cover)


class TestMultiAttributeKeys:
    KEYS = parse_keys(
        """
        (., (//flight, {@carrier, @number, @date}))
        (//flight, (gate, {}))
        """
    )

    RULE = parse_rule(
        """
        universal U
          var f <- xr : //flight
          var c <- f  : @carrier
          var n <- f  : @number
          var d <- f  : @date
          var g <- f  : gate
          field carrier = value(c)
          field number  = value(n)
          field date    = value(d)
          field gate    = value(g)
        """
    )

    def test_full_key_needed(self):
        assert check_propagation(self.KEYS, self.RULE, "carrier, number, date -> gate").holds
        assert not check_propagation(self.KEYS, self.RULE, "carrier, number -> gate").holds
        assert not check_propagation(self.KEYS, self.RULE, "date -> gate").holds

    def test_superset_of_the_key_also_works(self):
        assert check_propagation(
            self.KEYS, self.RULE, "carrier, number, date, gate -> gate"
        ).holds

    def test_cover_contains_exactly_the_key_fd(self):
        cover = minimum_cover_from_keys(self.KEYS, self.RULE).cover
        assert len(cover) == 1
        assert implies_fd(cover, "carrier, date, number -> gate")


class TestDescendantContexts:
    """Keys whose context itself uses // (deeply scoped relative keys)."""

    KEYS = parse_keys(
        """
        (., (//part, {@pid}))
        (//part, (component, {@cid}))
        (//part//component, (label, {}))
        """
    )

    RULE = parse_rule(
        """
        universal U
          var p  <- xr : //part
          var pi <- p  : @pid
          var c  <- p  : component
          var ci <- c  : @cid
          var cl <- c  : label
          field pid   = value(pi)
          field cid   = value(ci)
          field label = value(cl)
        """
    )

    def test_descendant_context_covers_child_structure(self):
        # The uniqueness constraint is stated for components *anywhere* below
        # a part; the rule nests components directly, which is contained.
        assert check_propagation(self.KEYS, self.RULE, "pid, cid -> label").holds

    def test_component_alone_insufficient(self):
        assert not check_propagation(self.KEYS, self.RULE, "cid -> label").holds


class TestExistenceInterplay:
    KEYS = parse_keys(
        """
        (., (//emp, {@id}))
        (//emp, (office, {}))
        (//emp/office, (phone, {}))
        """
    )

    RULE = parse_rule(
        """
        universal U
          var e  <- xr : //emp
          var ei <- e  : @id
          var o  <- e  : office
          var on <- o  : @room
          var ph <- o  : phone
          field empId = value(ei)
          field room  = value(on)
          field phone = value(ph)
        """
    )

    def test_identification_through_unique_intermediate(self):
        # office is unique under emp, so emp's key identifies the phone node
        # (prefix-uniqueness composition).
        result = check_propagation(self.KEYS, self.RULE, "empId -> phone")
        assert result.holds

    def test_room_attribute_is_determined_but_not_a_determinant(self):
        assert check_propagation(self.KEYS, self.RULE, "empId -> room").holds
        assert not check_propagation(self.KEYS, self.RULE, "room -> empId").holds

    def test_room_on_lhs_fails_existence_but_not_identification(self):
        # @room is not required to exist by any key, so condition (1) blocks
        # the FD even though identification succeeds via empId.
        result = check_propagation(self.KEYS, self.RULE, "empId, room -> phone")
        assert result.identified
        assert not result.existence_ok
        assert not result.holds
        relaxed = check_propagation(
            self.KEYS, self.RULE, "empId, room -> phone", check_existence=False
        )
        assert relaxed.holds

    def test_cover_under_both_semantics(self):
        default = minimum_cover_from_keys(self.KEYS, self.RULE)
        strict = minimum_cover_from_keys(self.KEYS, self.RULE, require_existence=True)
        # Identification-only: empId determines room and phone.
        assert implies_fd(default.cover, "empId -> room")
        assert implies_fd(default.cover, "empId -> phone")
        # The strict cover is a subset (every FD still individually valid).
        for fd in strict.cover:
            assert implies_fd(default.cover, fd)


class TestRootLevelUniqueness:
    KEYS = parse_keys(
        """
        (., (config, {}))
        (., (config/owner, {}))
        """
    )

    RULE = parse_rule(
        """
        universal U
          var c <- xr : config
          var o <- c  : owner
          var v <- c  : version
          field owner   = value(o)
          field version = value(v)
        """
    )

    def test_document_wide_singletons_yield_empty_lhs_fds(self):
        # There is at most one config/owner in the whole document, so the
        # empty set determines it (a "constant" column).
        result = check_propagation(self.KEYS, self.RULE, ([], {"owner"}))
        assert result.holds

    def test_version_not_constant(self):
        assert not check_propagation(self.KEYS, self.RULE, ([], {"version"})).holds

    def test_cover_reports_the_constant(self):
        cover = minimum_cover_from_keys(self.KEYS, self.RULE).cover
        assert implies_fd(cover, ([], {"owner"}))
