"""Algorithm ``naive`` — correctness and its agreement with ``minimumCover``."""

import pytest

from repro.core.minimum_cover import minimum_cover_from_keys
from repro.core.naive import TooManyFields, naive_minimum_cover
from repro.experiments.generators import generate_workload
from repro.experiments.paper_example import EXPECTED_MINIMUM_COVER
from repro.relational.fd import equivalent, implies_fd


class TestPaperExample:
    def test_naive_cover_equivalent_to_paper_cover(self, paper_keys, universal):
        result = naive_minimum_cover(paper_keys, universal, max_fields=8)
        assert equivalent(result.cover, list(EXPECTED_MINIMUM_COVER))

    def test_naive_agrees_with_minimum_cover(self, paper_keys, universal):
        fast = minimum_cover_from_keys(paper_keys, universal)
        slow = naive_minimum_cover(paper_keys, universal, max_fields=8)
        assert equivalent(fast.cover, slow.cover)

    def test_naive_cover_is_nonredundant(self, paper_keys, universal):
        cover = naive_minimum_cover(paper_keys, universal, max_fields=8).cover
        for fd in cover:
            others = [other for other in cover if other != fd]
            assert not implies_fd(others, fd)


class TestGuards:
    def test_field_cap(self, paper_keys, universal):
        with pytest.raises(TooManyFields):
            naive_minimum_cover(paper_keys, universal, max_fields=4)

    def test_lhs_size_bound_still_equivalent_here(self, paper_keys, universal):
        # The paper's cover has LHSs of size at most 3.
        bounded = naive_minimum_cover(paper_keys, universal, max_fields=8, max_lhs_size=3)
        assert equivalent(bounded.cover, list(EXPECTED_MINIMUM_COVER))


class TestAgreementOnSyntheticWorkloads:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_cover_small_workloads(self, seed):
        workload = generate_workload(num_fields=7, depth=3, num_keys=6, seed=seed)
        fast = minimum_cover_from_keys(workload.keys, workload.rule)
        slow = naive_minimum_cover(workload.keys, workload.rule, max_fields=8)
        assert equivalent(fast.cover, slow.cover)

    def test_same_cover_with_more_keys_than_levels(self):
        workload = generate_workload(num_fields=8, depth=2, num_keys=8, seed=3)
        fast = minimum_cover_from_keys(workload.keys, workload.rule)
        slow = naive_minimum_cover(workload.keys, workload.rule, max_fields=8)
        assert equivalent(fast.cover, slow.cover)
