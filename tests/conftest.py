"""Shared fixtures: the paper's running example and small synthetic inputs."""

import pytest

from repro.experiments import paper_example
from repro.experiments.generators import generate_document, generate_workload
from repro.keys.implication import ImplicationEngine


@pytest.fixture(scope="session")
def figure1():
    """The XML document of Figure 1."""
    return paper_example.figure1_document()


@pytest.fixture(scope="session")
def paper_keys():
    """The XML keys K1..K7 of Example 2.1."""
    return paper_example.paper_keys()


@pytest.fixture(scope="session")
def paper_engine(paper_keys):
    """A shared implication engine over K1..K7."""
    return ImplicationEngine(paper_keys)


@pytest.fixture(scope="session")
def sigma():
    """The transformation of Example 2.4."""
    return paper_example.paper_transformation()


@pytest.fixture(scope="session")
def paper_schema():
    """The relational schema R of Example 2.4."""
    return paper_example.paper_schema()


@pytest.fixture(scope="session")
def universal():
    """The universal relation U of Example 3.1."""
    return paper_example.universal_relation()


@pytest.fixture(scope="session")
def small_workload():
    """A small synthetic workload shared by core/experiment tests."""
    return generate_workload(num_fields=10, depth=4, num_keys=8, seed=7)


@pytest.fixture(scope="session")
def small_document(small_workload):
    return generate_document(small_workload, fanout=2, seed=7)
