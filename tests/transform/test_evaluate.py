"""Unit tests for shredding (rule evaluation over documents)."""

import pytest

from repro.relational.instance import is_null
from repro.relational.schema import RelationSchema
from repro.transform.dsl import parse_rule
from repro.transform.evaluate import evaluate_rule, evaluate_transformation
from repro.xmlmodel.builder import document, element, text


class TestPaperInstances:
    def test_book_instance(self, sigma, figure1):
        instance = evaluate_rule(sigma.rule("book"), figure1)
        rows = {(row["isbn"], row["title"]) for row in instance}
        assert rows == {("123", "XML"), ("234", "XML")}

    def test_chapter_instance_matches_figure_2(self, sigma, figure1):
        instance = evaluate_rule(sigma.rule("chapter"), figure1)
        rows = {(row["inBook"], row["number"], row["name"]) for row in instance}
        assert rows == {
            ("123", "1", "Introduction"),
            ("123", "10", "Conclusion"),
            ("234", "1", "Getting Acquainted"),
        }

    def test_section_instance_matches_example_2_5(self, sigma, figure1):
        instance = evaluate_rule(sigma.rule("section"), figure1)
        complete = {
            (row["inChapt"], row["number"], row["name"])
            for row in instance
            if not row.has_null()
        }
        assert complete == {("1", "1", "Fundamentals"), ("1", "2", "Attributes")}

    def test_chapters_without_sections_yield_null_rows(self, sigma, figure1):
        instance = evaluate_rule(sigma.rule("section"), figure1)
        null_rows = [row for row in instance if row.has_null()]
        # chapter 10 of book 123 and chapter 1 of book 234 have no sections.
        assert len(null_rows) == 2
        assert all(is_null(row["number"]) and is_null(row["name"]) for row in null_rows)

    def test_missing_author_contact_is_null(self, sigma, figure1):
        instance = evaluate_rule(sigma.rule("book"), figure1)
        by_isbn = {row["isbn"]: row for row in instance}
        assert by_isbn["123"]["contact"] == "tbray@example.org"
        assert is_null(by_isbn["234"]["contact"])


class TestSemanticsDetails:
    @pytest.fixture()
    def rule(self):
        return parse_rule(
            """
            table pair
              var a <- xr : //a
              var b <- a  : b
              var c <- a  : c
              field left  = value(b)
              field right = value(c)
            """
        )

    def test_cartesian_product_of_repeated_children(self, rule):
        tree = document(
            element(
                "r",
                element("a", element("b", text("b1")), element("b", text("b2")), element("c", text("c1"))),
            )
        )
        instance = evaluate_rule(rule, tree)
        rows = {(row["left"], row["right"]) for row in instance}
        assert rows == {("b1", "c1"), ("b2", "c1")}

    def test_full_cartesian_product(self, rule):
        tree = document(
            element(
                "r",
                element(
                    "a",
                    element("b", text("b1")),
                    element("b", text("b2")),
                    element("c", text("c1")),
                    element("c", text("c2")),
                ),
            )
        )
        assert len(evaluate_rule(rule, tree)) == 4

    def test_empty_path_gives_null(self, rule):
        tree = document(element("r", element("a", element("b", text("b1")))))
        instance = evaluate_rule(rule, tree)
        assert len(instance) == 1
        row = instance.rows[0]
        assert row["left"] == "b1"
        assert is_null(row["right"])

    def test_null_parent_propagates_to_descendants(self):
        rule = parse_rule(
            """
            table deep
              var a <- xr : //a
              var b <- a  : missing
              var c <- b  : alsoMissing
              field f = value(c)
            """
        )
        tree = document(element("r", element("a")))
        instance = evaluate_rule(rule, tree)
        assert len(instance) == 1
        assert is_null(instance.rows[0]["f"])

    def test_no_match_for_root_mapping_yields_single_null_row(self, rule):
        tree = document(element("r", element("unrelated")))
        instance = evaluate_rule(rule, tree)
        assert len(instance) == 1
        assert instance.rows[0].has_null()

    def test_deduplication_default_and_opt_out(self):
        rule = parse_rule(
            """
            table titles
              var b <- xr : //book
              var t <- b  : title
              field title = value(t)
            """
        )
        tree = document(
            element(
                "r",
                element("book", element("title", text("XML"))),
                element("book", element("title", text("XML"))),
            )
        )
        assert len(evaluate_rule(rule, tree)) == 1
        assert len(evaluate_rule(rule, tree, deduplicate=False)) == 2

    def test_supplied_schema_with_keys_is_used(self, rule):
        tree = document(element("r", element("a", element("b", text("x")), element("c", text("y")))))
        schema = RelationSchema("pair", ["left", "right"], keys=[{"left"}])
        instance = evaluate_rule(rule, tree, schema=schema)
        assert instance.schema.primary_key == frozenset({"left"})

    def test_attribute_and_element_values(self):
        rule = parse_rule(
            """
            table item
              var i <- xr : //item
              var s <- i  : @sku
              var l <- i  : label
              field sku   = value(s)
              field label = value(l)
            """
        )
        tree = document(element("r", element("item", {"sku": "p-1"}, element("label", text("Anvil")))))
        row = evaluate_rule(rule, tree).rows[0]
        assert row["sku"] == "p-1"
        assert row["label"] == "Anvil"


class TestTransformationEvaluation:
    def test_all_relations_produced(self, sigma, figure1):
        instances = evaluate_transformation(sigma, figure1)
        assert set(instances) == {"book", "chapter", "section"}

    def test_target_schema_keys_attached(self, sigma, figure1, paper_schema):
        instances = evaluate_transformation(sigma, figure1, schema=paper_schema)
        assert instances["chapter"].schema.primary_key == frozenset({"inBook", "number"})

    def test_relations_not_in_schema_use_induced_schema(self, sigma, figure1, paper_schema):
        # Passing a schema containing only some relations still works.
        from repro.relational.schema import DatabaseSchema

        partial = DatabaseSchema([paper_schema.relation("book")], name="partial")
        instances = evaluate_transformation(sigma, figure1, schema=partial)
        assert instances["chapter"].schema.primary_key is None
