"""Unit tests for table-rule validation (well-formedness of Definition 2.2)."""

import pytest

from repro.transform.rule import TableRule, Transformation
from repro.transform.validate import (
    InvalidTableRule,
    UnsupportedFeature,
    assert_valid,
    reject_unsupported,
    validate_rule,
    validate_transformation,
)


def make_valid_rule():
    rule = TableRule("book")
    rule.add_mapping("xa", "xr", "//book")
    rule.add_mapping("x1", "xa", "@isbn")
    rule.add_field("isbn", "x1")
    return rule


class TestValidRules:
    def test_paper_rules_are_valid(self, sigma):
        for report in validate_transformation(sigma).values():
            assert report.ok, report.problems

    def test_minimal_valid_rule(self):
        assert validate_rule(make_valid_rule()).ok

    def test_assert_valid_accepts_rule_and_transformation(self, sigma):
        assert_valid(make_valid_rule())
        assert_valid(sigma)


class TestInvalidRules:
    def test_no_fields(self):
        rule = TableRule("empty")
        rule.add_mapping("v", "xr", "//a")
        report = validate_rule(rule)
        assert not report.ok
        assert any("no field rules" in problem for problem in report.problems)

    def test_field_with_undeclared_variable(self):
        rule = TableRule("r")
        rule.add_field("a", "ghost")
        report = validate_rule(rule)
        assert any("undeclared variable" in problem for problem in report.problems)

    def test_mapping_from_undeclared_source(self):
        rule = TableRule("r")
        rule.add_mapping("v", "ghost", "a")
        rule.add_field("a", "v")
        report = validate_rule(rule)
        assert any("undeclared" in problem or "not connected" in problem for problem in report.problems)

    def test_descendant_only_from_root(self):
        rule = TableRule("r")
        rule.add_mapping("v", "xr", "//a")
        rule.add_mapping("w", "v", "//b")  # '//' from a non-root variable
        rule.add_field("f", "w")
        report = validate_rule(rule)
        assert any("'//'" in problem for problem in report.problems)

    def test_descendant_from_root_is_fine(self):
        rule = TableRule("r")
        rule.add_mapping("v", "xr", "//a//b")
        rule.add_field("f", "v")
        assert validate_rule(rule).ok

    def test_empty_path_mapping_rejected(self):
        rule = TableRule("r")
        rule.add_mapping("v", "xr", ".")
        rule.add_field("f", "v")
        report = validate_rule(rule)
        assert any("empty path" in problem for problem in report.problems)

    def test_field_variable_must_be_leaf(self):
        rule = TableRule("r")
        rule.add_mapping("v", "xr", "//a")
        rule.add_mapping("w", "v", "b")
        rule.add_field("f", "v")  # v has an outgoing mapping
        rule.add_field("g", "w")
        report = validate_rule(rule)
        assert any("leaves" in problem for problem in report.problems)

    def test_cycle_detected(self):
        rule = TableRule("r")
        rule.add_mapping("v", "w", "a")
        rule.add_mapping("w", "v", "b")
        rule.add_field("f", "v")
        report = validate_rule(rule)
        assert any("cycle" in problem for problem in report.problems)

    def test_raise_if_invalid(self):
        rule = TableRule("r")
        rule.add_field("a", "ghost")
        with pytest.raises(InvalidTableRule) as excinfo:
            validate_rule(rule).raise_if_invalid()
        assert "Rule(r)" in str(excinfo.value)

    def test_assert_valid_raises_for_bad_transformation(self):
        rule = TableRule("r")
        rule.add_field("a", "ghost")
        with pytest.raises(InvalidTableRule):
            assert_valid(Transformation([rule]))


class TestDecidabilityFrontier:
    @pytest.mark.parametrize("feature", ["selection", "difference", "foreign-key"])
    def test_known_features_refused_with_explanation(self, feature):
        with pytest.raises(UnsupportedFeature) as excinfo:
            reject_unsupported(feature)
        assert "undecidable" in str(excinfo.value)

    def test_unknown_feature_refused_generically(self):
        with pytest.raises(UnsupportedFeature):
            reject_unsupported("time-travel")
