"""Unit tests for the streaming evaluator (shredding over events)."""

from collections import Counter

from repro.relational.instance import NULL, is_null
from repro.transform.evaluate import evaluate_rule, evaluate_transformation
from repro.transform.rule import TableRule
from repro.transform.stream import (
    StreamShredder,
    iter_rule_rows,
    stream_evaluate_rule,
    stream_evaluate_transformation,
)
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serializer import serialize


def bag(instance):
    return Counter(instance.rows)


class TestStreamEvaluateRule:
    def test_paper_rules_agree_with_dom(self, figure1, sigma):
        text = serialize(figure1)
        for rule in sigma:
            dom = evaluate_rule(rule, figure1, deduplicate=False)
            stream = stream_evaluate_rule(rule, text, deduplicate=False)
            assert bag(dom) == bag(stream)

    def test_set_semantics(self, figure1, sigma):
        text = serialize(figure1)
        for rule in sigma:
            dom = evaluate_rule(rule, figure1, deduplicate=True)
            stream = stream_evaluate_rule(rule, text, deduplicate=True)
            assert set(dom.rows) == set(stream.rows)
            assert len(stream) == len(set(stream.rows))

    def test_accepts_tree_input(self, figure1, sigma):
        rule = sigma.rule("chapter")
        dom = evaluate_rule(rule, figure1, deduplicate=False)
        stream = stream_evaluate_rule(rule, figure1, deduplicate=False)
        assert bag(dom) == bag(stream)

    def test_unmatched_rule_produces_null_row(self, figure1):
        rule = TableRule("missing")
        rule.add_mapping("z", "xr", "//nothing")
        rule.add_mapping("zv", "z", "@v")
        rule.add_field("v", "zv")
        instance = stream_evaluate_rule(rule, figure1, deduplicate=False)
        assert len(instance) == 1
        assert is_null(instance.rows[0]["v"])

    def test_partial_nulls_for_missing_subelements(self, figure1, sigma):
        instance = stream_evaluate_rule(sigma.rule("book"), figure1)
        authors = {row["author"] for row in instance if not is_null(row["author"])}
        assert authors == {"Tim Bray"}
        assert any(is_null(row["author"]) for row in instance)  # the second book

    def test_multi_anchor_product(self):
        tree = parse_document('<r><a v="1"/><a v="2"/><b w="x"/><b w="y"/></r>')
        rule = TableRule("prod")
        rule.add_mapping("a", "xr", "a")
        rule.add_mapping("av", "a", "@v")
        rule.add_mapping("b", "xr", "b")
        rule.add_mapping("bw", "b", "@w")
        rule.add_field("v", "av")
        rule.add_field("w", "bw")
        dom = evaluate_rule(rule, tree, deduplicate=False)
        stream = stream_evaluate_rule(rule, tree, deduplicate=False)
        assert bag(dom) == bag(stream)
        assert len(stream) == 4

    def test_root_field_rule(self, figure1):
        rule = TableRule("whole")
        rule.add_field("doc", "xr")
        dom = evaluate_rule(rule, figure1, deduplicate=False)
        stream = stream_evaluate_rule(rule, figure1, deduplicate=False)
        assert bag(dom) == bag(stream)

    def test_nested_anchor_matches(self):
        tree = parse_document('<r><a id="1"><a id="2"><b v="x"/></a><b v="y"/></a></r>')
        rule = TableRule("nested")
        rule.add_mapping("a", "xr", "//a")
        rule.add_mapping("ai", "a", "@id")
        rule.add_mapping("ab", "a", "b")
        rule.add_mapping("abv", "ab", "@v")
        rule.add_field("id", "ai")
        rule.add_field("bv", "abv")
        dom = evaluate_rule(rule, tree, deduplicate=False)
        stream = stream_evaluate_rule(rule, tree, deduplicate=False)
        assert bag(dom) == bag(stream)

    def test_attribute_anchor(self, figure1):
        rule = TableRule("attr_anchor")
        rule.add_mapping("i", "xr", "//book/@isbn")
        rule.add_field("isbn", "i")
        stream = stream_evaluate_rule(rule, figure1, deduplicate=False)
        assert sorted(row["isbn"] for row in stream) == ["123", "234"]

    def test_duplicated_attribute_binds_one_node_with_final_value(self):
        # XML allows one attribute per name; the DOM parser keeps the last
        # occurrence.  The streaming evaluator must bind one attribute node
        # (with that final value), not one per attr event.
        rule = TableRule("dup")
        rule.add_mapping("za", "xr", "//chapter/@n")
        rule.add_field("n", "za")
        doc = '<book><chapter n="1" n="2">x</chapter></book>'
        dom = evaluate_rule(rule, parse_document(doc), deduplicate=False)
        stream = stream_evaluate_rule(rule, doc, deduplicate=False)
        assert bag(dom) == bag(stream)
        assert [dict(row) for row in stream.rows] == [{"n": "2"}]


class TestIterRuleRows:
    def test_rows_stream_incrementally_per_anchor(self, figure1, sigma):
        rule = sigma.rule("chapter")
        rows = list(iter_rule_rows(rule, figure1))
        dom = evaluate_rule(rule, figure1, deduplicate=False)
        assert Counter(map(tuple, (sorted(r.items()) for r in map(dict, dom.rows)))) and len(
            rows
        ) == len(dom)

    def test_deduplicated_iteration(self, figure1):
        rule = TableRule("titles")
        rule.add_mapping("b", "xr", "//book")
        rule.add_mapping("t", "b", "title")
        rule.add_field("title", "t")
        rows = list(iter_rule_rows(rule, figure1, deduplicate=True))
        assert rows == [{"title": "XML"}]


class TestStreamShredder:
    def test_transformation_single_pass(self, figure1, sigma):
        text = serialize(figure1)
        dom = evaluate_transformation(sigma, figure1)
        stream = stream_evaluate_transformation(sigma, text)
        assert set(dom) == set(stream)
        for name in dom:
            assert set(dom[name].rows) == set(stream[name].rows)

    def test_respects_target_schema(self, figure1, sigma, paper_schema):
        instances = stream_evaluate_transformation(sigma, figure1, schema=paper_schema)
        assert instances["chapter"].schema.primary_key == frozenset({"inBook", "number"})

    def test_manual_feed_loop(self, figure1, sigma):
        from repro.xmlmodel.events import iter_tree_events

        shredder = StreamShredder(sigma)
        for event in iter_tree_events(figure1):
            shredder.feed(event)
        instances = shredder.finish()
        dom = evaluate_transformation(sigma, figure1)
        for name in dom:
            assert set(dom[name].rows) == set(instances[name].rows)
