"""Unit tests for table trees (the structure used by the algorithms)."""

import pytest

from repro.transform.table_tree import TableTree
from repro.transform.validate import InvalidTableRule
from repro.transform.rule import TableRule
from repro.xmlmodel.paths import parse_path


@pytest.fixture()
def section_tree(sigma):
    """The table tree of Rule(section), Fig. 3(b)."""
    return TableTree(sigma.rule("section"))


@pytest.fixture()
def book_tree(sigma):
    """The table tree of Rule(book), Fig. 3(a)."""
    return TableTree(sigma.rule("book"))


class TestStructure:
    def test_root(self, book_tree):
        assert book_tree.root == "xr"

    def test_parent_and_children(self, book_tree):
        assert book_tree.parent("xa") == "xr"
        assert book_tree.parent("x4") == "xb"
        assert set(book_tree.children("xa")) == {"x1", "x2", "xb"}
        assert book_tree.children("x4") == []

    def test_ancestors_top_down(self, book_tree):
        assert book_tree.ancestors("x4") == ["xr", "xa", "xb"]
        assert book_tree.ancestors("x4", include_self=True) == ["xr", "xa", "xb", "x4"]
        assert book_tree.ancestors("xr") == []

    def test_is_ancestor(self, book_tree):
        assert book_tree.is_ancestor("xr", "x4")
        assert book_tree.is_ancestor("xa", "x4", strict=True)
        assert book_tree.is_ancestor("x4", "x4")
        assert not book_tree.is_ancestor("x4", "x4", strict=True)
        assert not book_tree.is_ancestor("x4", "xa")

    def test_descendants(self, book_tree):
        assert set(book_tree.descendants("xb")) == {"x3", "x4"}
        assert "xa" in book_tree.descendants("xr")
        assert "xb" in book_tree.descendants("xb", include_self=True)

    def test_unknown_variable_raises(self, book_tree):
        with pytest.raises(KeyError):
            book_tree.parent("ghost")


class TestPaths:
    def test_path_from_parent(self, book_tree):
        assert book_tree.path_from_parent("xa") == parse_path("//book")
        assert book_tree.path_from_parent("x1") == parse_path("@isbn")

    def test_path_between_composes_mappings(self, book_tree):
        # Fig. 3(a): path(xr, x4) = //book/author/contact
        assert book_tree.path_between("xr", "x4") == parse_path("//book/author/contact")
        assert book_tree.path_between("xa", "x4") == parse_path("author/contact")

    def test_path_between_self_is_epsilon(self, book_tree):
        assert book_tree.path_between("xa", "xa").is_epsilon

    def test_path_between_non_ancestor_raises(self, book_tree):
        with pytest.raises(ValueError):
            book_tree.path_between("x1", "x4")

    def test_path_from_root(self, section_tree):
        assert section_tree.path_from_root("z3") == parse_path("//book/chapter/section/name")


class TestFieldsAndAttributes:
    def test_field_variable(self, section_tree):
        assert section_tree.field_variable("name") == "z3"

    def test_attribute_fields(self, section_tree):
        # zc carries @number which populates inChapt; zs carries @number for number.
        assert section_tree.attribute_fields("zc") == {"number": "inChapt"}
        assert section_tree.attribute_fields("zs") == {"number": "number"}
        assert section_tree.attribute_fields("z3") == {}

    def test_attribute_fields_restricted(self, section_tree):
        assert section_tree.fields_from_attributes_of("zc", ["inChapt"]) == {"number": "inChapt"}
        assert section_tree.fields_from_attributes_of("zc", ["name"]) == {}

    def test_fields(self, section_tree):
        assert section_tree.fields() == ["inChapt", "number", "name"]


class TestMetricsAndRendering:
    def test_depth_counts_intermediate_labels(self, book_tree, section_tree):
        # Rule(book): xr --//book--> xa --author--> xb --contact--> x4 : depth 4
        assert book_tree.depth == 4
        # Rule(section): //book/chapter (3) + section (1) + name/@number (1) = 5
        assert section_tree.depth == 5

    def test_size_counts_all_steps(self, book_tree):
        assert book_tree.size == 2 + 1 + 1 + 1 + 1 + 1

    def test_render_lists_variables_and_fields(self, section_tree):
        rendered = section_tree.render()
        assert "(zs)" in rendered
        assert "[name]" in rendered
        assert "//book/chapter" in rendered

    def test_invalid_rule_rejected_at_construction(self):
        rule = TableRule("bad")
        rule.add_field("f", "ghost")
        with pytest.raises(InvalidTableRule):
            TableTree(rule)

    def test_validation_can_be_skipped(self):
        rule = TableRule("bad")
        rule.add_field("f", "ghost")
        tree = TableTree(rule, validate=False)
        assert tree.root == "xr"
