"""Unit tests for universal relations and the merge construction."""

import pytest

from repro.transform.table_tree import TableTree
from repro.transform.universal import UniversalRelation, universal_from_transformation
from repro.transform.validate import validate_rule


class TestUniversalRelation:
    def test_wraps_rule_and_schema(self, universal):
        assert universal.name == "U"
        assert len(universal.fields) == 8
        assert universal.schema.attributes == tuple(universal.rule.field_names)

    def test_table_tree_available(self, universal):
        assert isinstance(universal.table_tree, TableTree)
        assert universal.table_tree.root == universal.rule.root_variable


class TestMergeConstruction:
    def test_merge_paper_transformation(self, sigma):
        merged = universal_from_transformation(sigma, name="U")
        assert isinstance(merged, UniversalRelation)
        # Fields are prefixed by their source relation.
        assert "bookIsbn" in merged.fields
        assert "chapterNumber" in merged.fields
        assert "sectionName" in merged.fields
        assert validate_rule(merged.rule).ok

    def test_shared_spine_variables_are_merged(self, sigma):
        merged = universal_from_transformation(sigma, name="U")
        tree = merged.table_tree
        # //book appears in Rule(book) and Rule(chapter) but becomes a single
        # variable of the merged rule: only one child of the root maps //book.
        book_children = [
            v for v in tree.children(tree.root) if tree.path_from_parent(v).text == "//book"
        ]
        assert len(book_children) == 1

    def test_field_name_overrides(self, sigma):
        merged = universal_from_transformation(
            sigma, name="U", field_names={("book", "isbn"): "theIsbn"}
        )
        assert "theIsbn" in merged.fields
        assert "bookIsbn" not in merged.fields

    def test_duplicate_target_fields_collapse(self, sigma):
        # chapter.inBook and book.isbn have different generated names, so both
        # survive; but merging the same rule twice must not duplicate fields.
        merged_once = universal_from_transformation(sigma, name="U")
        assert len(merged_once.fields) == len(set(merged_once.fields))

    def test_merged_rule_supports_cover_computation(self, sigma, paper_keys):
        from repro.core import minimum_cover_from_keys
        from repro.relational.fd import implies_fd

        merged = universal_from_transformation(sigma, name="U")
        cover = minimum_cover_from_keys(paper_keys, merged)
        # book.isbn and chapter.inBook come from the same attribute node, so
        # the cover must imply the FDs phrased in terms of either of them.
        assert implies_fd(cover.cover, "bookIsbn -> bookTitle")
        assert implies_fd(cover.cover, "chapterInBook -> bookTitle")
        assert implies_fd(cover.cover, "bookIsbn -> chapterInBook")
        assert implies_fd(cover.cover, "bookIsbn, chapterNumber -> chapterName")
