"""Unit tests for the transformation DSL."""

import pytest

from repro.transform.dsl import (
    DSLSyntaxError,
    parse_rule,
    parse_transformation,
    render_transformation,
)
from repro.xmlmodel.paths import parse_path


SIMPLE = """
# a one-table transformation
table book
  var xa <- xr : //book
  var x1 <- xa : @isbn
  field isbn = value(x1)
"""


class TestParsing:
    def test_single_table(self):
        sigma = parse_transformation(SIMPLE)
        assert sigma.relation_names == ["book"]
        rule = sigma.rule("book")
        assert rule.mapping("xa").path == parse_path("//book")
        assert rule.field_variable("isbn") == "x1"

    def test_multiple_tables(self):
        sigma = parse_transformation(
            SIMPLE
            + """
            table chapter
              var ya <- xr : //book/chapter
              var y1 <- ya : @number
              field number = value(y1)
            """
        )
        assert sigma.relation_names == ["book", "chapter"]

    def test_universal_keyword(self):
        sigma = parse_transformation(
            """
            universal U
              var v <- xr : //a
              field f = value(v)
            """
        )
        assert sigma.relation_names == ["U"]

    def test_custom_root_variable(self):
        sigma = parse_transformation(
            """
            table t root r0
              var v <- r0 : //a
              field f = value(v)
            """
        )
        assert sigma.rule("t").root_variable == "r0"

    def test_field_without_value_wrapper(self):
        rule = parse_rule(
            """
            table t
              var v <- xr : //a
              field f = v
            """
        )
        assert rule.field_variable("f") == "v"

    def test_comments_and_blank_lines_ignored(self):
        rule = parse_rule(
            """
            # heading comment

            table t
              var v <- xr : //a   # trailing comment
              field f = value(v)
            """
        )
        assert rule.field_names == ["f"]

    def test_parse_rule_requires_exactly_one_table(self):
        with pytest.raises(ValueError):
            parse_rule(SIMPLE + "\ntable extra\n  var v <- xr : //x\n  field f = value(v)")


class TestErrors:
    def test_statement_before_table(self):
        with pytest.raises(DSLSyntaxError):
            parse_transformation("var v <- xr : //a")

    def test_unrecognised_statement(self):
        with pytest.raises(DSLSyntaxError) as excinfo:
            parse_transformation("table t\n  nonsense here")
        assert excinfo.value.line_number == 2

    def test_malformed_var_line(self):
        with pytest.raises(DSLSyntaxError):
            parse_transformation("table t\n  var v < xr : //a")


class TestRendering:
    def test_round_trip(self, sigma):
        text = render_transformation(sigma)
        reparsed = parse_transformation(text)
        assert reparsed.relation_names == sigma.relation_names
        for rule in sigma:
            other = reparsed.rule(rule.relation)
            assert other.field_names == rule.field_names
            assert {m.variable: (m.source, m.path) for m in other.mappings} == {
                m.variable: (m.source, m.path) for m in rule.mappings
            }

    def test_render_mentions_custom_root(self):
        sigma = parse_transformation(
            """
            table t root r0
              var v <- r0 : //a
              field f = value(v)
            """
        )
        assert "root r0" in render_transformation(sigma)
