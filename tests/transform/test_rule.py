"""Unit tests for table rules and transformations (Definition 2.2)."""

import pytest

from repro.relational.schema import DatabaseSchema
from repro.transform.rule import TableRule, Transformation
from repro.xmlmodel.paths import parse_path


@pytest.fixture()
def book_rule():
    rule = TableRule("book")
    rule.add_mapping("xa", "xr", "//book")
    rule.add_mapping("x1", "xa", "@isbn")
    rule.add_mapping("x2", "xa", "title")
    rule.add_field("isbn", "x1")
    rule.add_field("title", "x2")
    return rule


class TestTableRule:
    def test_variables_include_root(self, book_rule):
        assert book_rule.variables == ["xr", "xa", "x1", "x2"]

    def test_field_names_in_order(self, book_rule):
        assert book_rule.field_names == ["isbn", "title"]

    def test_field_variable_lookup(self, book_rule):
        assert book_rule.field_variable("isbn") == "x1"
        with pytest.raises(KeyError):
            book_rule.field_variable("missing")

    def test_mapping_lookup(self, book_rule):
        assert book_rule.mapping("xa").path == parse_path("//book")
        with pytest.raises(KeyError):
            book_rule.mapping("nope")

    def test_parent(self, book_rule):
        assert book_rule.parent("xr") is None
        assert book_rule.parent("x1") == "xa"

    def test_fields_of_variable(self, book_rule):
        assert book_rule.fields_of_variable("x1") == ["isbn"]
        assert book_rule.fields_of_variable("xa") == []

    def test_duplicate_field_rejected(self, book_rule):
        with pytest.raises(ValueError):
            book_rule.add_field("isbn", "x2")

    def test_duplicate_variable_mapping_rejected(self, book_rule):
        with pytest.raises(ValueError):
            book_rule.add_mapping("xa", "xr", "//magazine")

    def test_remapping_root_rejected(self, book_rule):
        with pytest.raises(ValueError):
            book_rule.add_mapping("xr", "xa", "title")

    def test_schema_from_fields(self, book_rule):
        schema = book_rule.schema(keys=[{"isbn"}])
        assert schema.attributes == ("isbn", "title")
        assert schema.primary_key == frozenset({"isbn"})

    def test_has_variable(self, book_rule):
        assert book_rule.has_variable("xr")
        assert book_rule.has_variable("x2")
        assert not book_rule.has_variable("zz")

    def test_describe_mentions_fields_and_mappings(self, book_rule):
        text = book_rule.describe()
        assert "Rule(book)" in text
        assert "isbn: value(x1)" in text
        assert "xa <- xr : //book" in text

    def test_custom_root_variable(self):
        rule = TableRule("r", root_variable="root")
        rule.add_mapping("v", "root", "//a")
        assert rule.variables == ["root", "v"]


class TestTransformation:
    def test_rules_addressable_by_relation(self, book_rule):
        sigma = Transformation([book_rule])
        assert sigma.rule("book") is book_rule
        assert "book" in sigma
        assert len(sigma) == 1

    def test_duplicate_relation_rejected(self, book_rule):
        sigma = Transformation([book_rule])
        with pytest.raises(ValueError):
            sigma.add_rule(TableRule("book"))

    def test_missing_rule_raises(self):
        with pytest.raises(KeyError):
            Transformation().rule("nope")

    def test_target_schema(self, book_rule):
        sigma = Transformation([book_rule])
        schema = sigma.target_schema(keys={"book": [{"isbn"}]})
        assert isinstance(schema, DatabaseSchema)
        assert schema.relation("book").primary_key == frozenset({"isbn"})

    def test_paper_transformation_structure(self, sigma):
        assert sorted(sigma.relation_names) == ["book", "chapter", "section"]
        assert sigma.rule("section").field_names == ["inChapt", "number", "name"]

    def test_describe_round_trips_content(self, sigma):
        text = sigma.describe()
        assert "Rule(book)" in text and "Rule(section)" in text
