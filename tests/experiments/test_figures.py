"""The figure builders must run end-to-end and reproduce the paper's *shapes*.

These tests use deliberately tiny grids so the whole suite stays fast; the
benchmarks directory re-runs the same builders at realistic sizes.
"""

import pytest

from repro.experiments.figures import (
    figure_7a,
    figure_7b,
    figure_7c,
    naive_blowup_series,
    run_all,
)


class TestFigure7a:
    def test_series_structure(self):
        series = figure_7a(fields_grid=(5, 8), depth=3, num_keys=6, naive_limit=8)
        assert series.x_values() == [5, 8]
        assert "minimumCover" in series.algorithms()
        assert "naive" in series.algorithms()
        assert all(point.seconds["minimumCover"] >= 0 for point in series.points)

    def test_cover_sizes_recorded(self):
        series = figure_7a(fields_grid=(6,), depth=3, num_keys=6, naive_limit=0)
        assert "cover_size" in series.points[0].extra

    def test_naive_skipped_beyond_limit(self):
        series = figure_7a(fields_grid=(5, 14), depth=3, num_keys=6, naive_limit=8)
        assert "naive" in series.points[0].seconds
        assert "naive" not in series.points[1].seconds


class TestFigure7bAnd7c:
    def test_depth_series(self):
        series = figure_7b(depths=(3, 5), num_fields=10, num_keys=8, repeat=1)
        assert series.x_values() == [3, 5]
        assert set(series.algorithms()) == {"propagation", "GminimumCover"}

    def test_propagation_not_slower_than_cover_based_check(self):
        series = figure_7b(depths=(3, 6), num_fields=10, num_keys=8, repeat=2)
        # Allow generous tolerance: the point of the figure is the ordering.
        assert series.always_faster("propagation", "GminimumCover", tolerance=2.0)

    def test_keys_series(self):
        series = figure_7c(keys_grid=(6, 12), num_fields=10, depth=4, repeat=1)
        assert series.x_values() == [6, 12]
        assert all("propagation" in point.seconds for point in series.points)


class TestNaiveBlowup:
    def test_naive_grows_much_faster_than_minimum_cover(self):
        series = naive_blowup_series(fields_grid=(5, 9), depth=3, num_keys=6)
        naive_growth = series.growth_ratio("naive")
        cover_growth = series.growth_ratio("minimumCover")
        assert naive_growth > cover_growth
        # The paper quotes ~200x per +5 fields for naive vs at most ~2x for
        # minimumCover; shapes (not constants) are asserted here.
        assert naive_growth > 5 * cover_growth


class TestRunAll:
    def test_fast_mode_produces_four_series(self):
        # Keep it minimal: run_all(fast=True) exercises every builder once.
        series_list = run_all(fast=True)
        assert len(series_list) == 4
        for series in series_list:
            assert series.points
            assert series.to_table()
