"""Tests for the corpus generator (cross-document duplicate keys)."""

import pytest

from repro.experiments.scenarios import ScenarioSpec, build_corpus
from repro.keys import KeyStreamChecker
from repro.relational.instance import RelationInstance
from repro.transform.stream import stream_evaluate_transformation
from repro.xmlmodel import iter_events

SPEC = ScenarioSpec(num_fields=8, depth=3, num_keys=6, fanout=2, seed=7)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(SPEC, documents=3, cross_duplicates=3)


def _merged_instance(corpus):
    rule = corpus.workload.rule
    merged = RelationInstance(rule.schema())
    for text in corpus.texts():
        for row in stream_evaluate_transformation([rule], text)["U"].rows:
            merged.add_row(row)
    return merged


class TestCorpusShape:
    def test_document_count_and_ids(self, corpus):
        assert corpus.documents == 3
        assert corpus.document_ids == ["doc0", "doc1", "doc2"]
        assert len(corpus.texts()) == 3

    def test_each_document_satisfies_its_xml_keys(self, corpus):
        for text in corpus.texts():
            checker = KeyStreamChecker(corpus.keys)
            for event in iter_events(text):
                checker.feed(event)
            assert checker.finish() == []

    def test_injection_slots_are_distinct(self, corpus):
        assert len(set(corpus.injections)) == len(corpus.injections)
        assert corpus.expected_cross_duplicates == 3


class TestCrossDocumentDuplicates:
    def test_exactly_the_injected_relational_duplicates(self, corpus):
        merged = _merged_instance(corpus)
        spine = frozenset(corpus.workload.key_fields)
        violations = merged.fd_violations(spine, set(merged.schema.attributes))
        assert len(violations) == corpus.expected_cross_duplicates
        assert {v.kind for v in violations} == {"value-conflict"}

    def test_zero_duplicates_is_clean(self):
        corpus = build_corpus(SPEC, documents=2, cross_duplicates=0)
        merged = _merged_instance(corpus)
        spine = frozenset(corpus.workload.key_fields)
        assert merged.fd_violations(spine, set(merged.schema.attributes)) == []

    def test_documents_are_value_disjoint_outside_injections(self, corpus):
        # Non-key fields are document-prefixed, so colliding rows must
        # still differ somewhere — they are conflicts, not duplicates.
        merged = _merged_instance(corpus)
        assert len(merged.distinct()) == len(merged)


class TestValidation:
    def test_capacity_exceeded(self):
        with pytest.raises(ValueError):
            build_corpus(SPEC, documents=2, cross_duplicates=SPEC.fanout + 1)

    def test_at_least_one_document(self):
        with pytest.raises(ValueError):
            build_corpus(SPEC, documents=0)

    def test_single_document_allows_no_duplicates(self):
        corpus = build_corpus(SPEC, documents=1, cross_duplicates=0)
        assert corpus.documents == 1
        with pytest.raises(ValueError):
            build_corpus(SPEC, documents=1, cross_duplicates=1)
