"""The core-count scaling scenario (small smoke; timings are bench territory)."""

from repro.experiments.scenarios import ScenarioSpec, parallel_scaling_series

SMALL_SPEC = ScenarioSpec(
    num_fields=8,
    depth=3,
    num_keys=4,
    fanout=3,
    duplicate_violations=2,
    missing_violations=2,
    seed=5,
)


def test_scaling_series_shape_and_verified_outputs():
    series = parallel_scaling_series(
        SMALL_SPEC, jobs=(1, 2), repeat=1, use_processes=False
    )
    assert series.x_values() == [1, 2]
    assert series.algorithms() == ["pipeline"]
    assert all(value >= 0 for value in series.column("pipeline"))
    assert series.points[0].extra["shards"] == 1
    assert series.points[1].extra["shards"] > 1
    assert "nodes" in series.points[0].extra


def test_scaling_series_renders_as_table():
    series = parallel_scaling_series(
        SMALL_SPEC, jobs=(1, 2), repeat=1, use_processes=False
    )
    table = series.to_table()
    assert "jobs" in table and "pipeline (s)" in table
