"""Synthetic workload generators used by the benchmark harness."""

import pytest

from repro.experiments.generators import generate_document, generate_workload
from repro.keys.satisfaction import satisfies_all
from repro.keys.transitive import is_transitive_set
from repro.transform.evaluate import evaluate_rule
from repro.transform.validate import validate_rule


class TestGenerateWorkload:
    def test_requested_field_count(self):
        for fields in (5, 12, 40):
            workload = generate_workload(fields, depth=4, num_keys=8)
            assert workload.num_fields == fields

    def test_requested_key_count(self):
        for keys in (4, 10, 25):
            workload = generate_workload(20, depth=4, num_keys=keys)
            assert len(workload.keys) == keys

    def test_requested_depth(self):
        for depth in (1, 3, 7):
            workload = generate_workload(20, depth=depth, num_keys=depth + 2)
            assert workload.depth == depth
            assert len(workload.level_tags) == depth

    def test_rule_is_wellformed(self):
        workload = generate_workload(25, depth=5, num_keys=12)
        assert validate_rule(workload.rule).ok

    def test_key_set_is_transitive(self):
        workload = generate_workload(20, depth=5, num_keys=10)
        assert is_transitive_set(workload.keys)

    def test_sample_fd_uses_spine_keys(self):
        workload = generate_workload(15, depth=5, num_keys=10)
        fd = workload.sample_fd()
        assert set(workload.key_fields) >= set(fd.lhs) or set(fd.lhs) >= set(workload.key_fields[:1])
        assert len(fd.rhs) == 1

    def test_sample_fd_level_clamped(self):
        workload = generate_workload(15, depth=5, num_keys=10)
        assert workload.sample_fd(level=100).lhs == frozenset(workload.key_fields)

    def test_deterministic_for_fixed_seed(self):
        first = generate_workload(15, depth=4, num_keys=10, seed=5)
        second = generate_workload(15, depth=4, num_keys=10, seed=5)
        assert first.fields == second.fields
        assert first.keys == second.keys

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_workload(3, depth=5)
        with pytest.raises(ValueError):
            generate_workload(10, depth=0)

    def test_universal_property(self):
        workload = generate_workload(10, depth=3, num_keys=6)
        assert workload.universal.fields == workload.rule.field_names


class TestGenerateDocument:
    def test_document_satisfies_generated_keys(self):
        workload = generate_workload(12, depth=4, num_keys=10, seed=2)
        doc = generate_document(workload, fanout=3, seed=2)
        assert satisfies_all(doc, workload.keys)

    def test_document_depth_matches(self):
        workload = generate_workload(10, depth=3, num_keys=6)
        doc = generate_document(workload, fanout=2)
        assert doc.root.child_elements()[0].label == "lvl0"
        deepest = doc.elements_by_tag("lvl2")
        assert deepest and all(node.depth() == 3 for node in deepest)

    def test_shredding_produces_expected_row_count(self):
        workload = generate_workload(10, depth=3, num_keys=6)
        doc = generate_document(workload, fanout=2)
        instance = evaluate_rule(workload.rule, doc)
        # fanout^depth complete spine combinations.
        assert len(instance) == 2 ** 3

    def test_shredded_instance_satisfies_propagated_cover(self):
        from repro.core import minimum_cover_from_keys

        workload = generate_workload(14, depth=4, num_keys=10, seed=4)
        doc = generate_document(workload, fanout=2, seed=4)
        instance = evaluate_rule(workload.rule, doc)
        cover = minimum_cover_from_keys(workload.keys, workload.rule)
        for fd in cover.cover:
            assert instance.satisfies_fd(fd.lhs, fd.rhs), str(fd)

    def test_fanout_controls_size(self):
        workload = generate_workload(8, depth=3, num_keys=6)
        small = generate_document(workload, fanout=1)
        large = generate_document(workload, fanout=3)
        assert len(large) > len(small)
