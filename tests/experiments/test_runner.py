"""Timing utilities and experiment series containers."""

import math

import pytest

from repro.experiments.runner import ExperimentSeries, SeriesPoint, time_call


class TestTimeCall:
    def test_returns_result_and_nonnegative_time(self):
        seconds, result = time_call(lambda: 21 * 2)
        assert result == 42
        assert seconds >= 0.0

    def test_repeat_takes_best(self):
        calls = []

        def work():
            calls.append(1)
            return len(calls)

        seconds, result = time_call(work, repeat=3)
        assert len(calls) == 3
        assert result == 3

    def test_repeat_minimum_one(self):
        seconds, result = time_call(lambda: "x", repeat=0)
        assert result == "x"


class TestExperimentSeries:
    def make_series(self):
        series = ExperimentSeries(name="demo", description="d", x_label="fields")
        series.add({"fields": 5}, {"fast": 0.01, "slow": 0.10})
        series.add({"fields": 10}, {"fast": 0.02, "slow": 0.40})
        series.add({"fields": 20}, {"fast": 0.04}, note="no slow run")
        return series

    def test_algorithms_discovered_in_order(self):
        assert self.make_series().algorithms() == ["fast", "slow"]

    def test_columns_and_x_values(self):
        series = self.make_series()
        assert series.x_values() == [5, 10, 20]
        assert series.column("fast") == [0.01, 0.02, 0.04]
        assert math.isnan(series.column("slow")[-1])

    def test_growth_ratio(self):
        series = self.make_series()
        assert series.growth_ratio("fast") == 4.0
        assert series.growth_ratio("slow") == 4.0

    def test_growth_ratio_undefined_for_single_point(self):
        series = ExperimentSeries(name="one", description="d", x_label="x")
        series.add({"x": 1}, {"algo": 0.5})
        assert math.isnan(series.growth_ratio("algo"))

    def test_always_faster(self):
        series = self.make_series()
        assert series.always_faster("fast", "slow")
        assert not series.always_faster("slow", "fast")
        assert series.always_faster("slow", "fast", tolerance=100)

    def test_to_table_renders_every_row(self):
        table = self.make_series().to_table()
        assert "fields" in table
        assert "fast (s)" in table and "slow (s)" in table
        assert table.count("\n") >= 4
        assert "-" in table.splitlines()[-1]  # missing slow value rendered as '-'

    def test_points_carry_extra_metadata(self):
        series = self.make_series()
        assert isinstance(series.points[2], SeriesPoint)
        assert series.points[2].extra == {"note": "no slow run"}


class TestTimeCallGC:
    def test_gc_disabled_inside_timed_region_and_restored(self):
        import gc

        from repro.experiments.runner import time_call

        states = []
        assert gc.isenabled()
        seconds, result = time_call(lambda: states.append(gc.isenabled()) or 7, repeat=3)
        assert result == 7
        assert states == [False, False, False]
        assert gc.isenabled()

    def test_gc_state_restored_when_fn_raises(self):
        import gc

        from repro.experiments.runner import time_call

        with pytest.raises(RuntimeError):
            time_call(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert gc.isenabled()

    def test_disabled_gc_is_left_disabled(self):
        import gc

        from repro.experiments.runner import time_call

        gc.disable()
        try:
            time_call(lambda: None)
            assert not gc.isenabled()
        finally:
            gc.enable()
