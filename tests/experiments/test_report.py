"""Unit tests for markdown reporting of experiments and designs."""

from repro.design import design_from_scratch
from repro.experiments.report import design_report, experiments_report, series_to_markdown
from repro.experiments.runner import ExperimentSeries


def make_series():
    series = ExperimentSeries(name="Figure X", description="demo", x_label="fields")
    series.add({"fields": 5}, {"fast": 0.0123, "slow": 0.5})
    series.add({"fields": 10}, {"fast": 0.02})
    return series


class TestSeriesMarkdown:
    def test_contains_header_and_rows(self):
        text = series_to_markdown(make_series())
        assert text.startswith("### Figure X")
        assert "| fields | fast (s) | slow (s) |" in text
        assert "| 5 | 0.0123 | 0.5000 |" in text

    def test_missing_measurements_rendered_as_dash(self):
        text = series_to_markdown(make_series())
        assert "—" in text

    def test_experiments_report_combines_series(self):
        text = experiments_report([make_series(), make_series()])
        assert text.count("### Figure X") == 2
        assert text.startswith("# Measured experiment series")


class TestDesignReport:
    def test_report_lists_cover_relations_and_sql(self, paper_keys, universal):
        result = design_from_scratch(paper_keys, universal)
        text = design_report(result)
        assert "# Refined relational design (BCNF)" in text
        assert "`bookIsbn -> bookTitle`" in text
        assert "CREATE TABLE" in text
        for relation in result.schema:
            assert relation.name in text

    def test_sql_can_be_omitted(self, paper_keys, universal):
        result = design_from_scratch(paper_keys, universal)
        text = design_report(result, include_sql=False)
        assert "CREATE TABLE" not in text
