"""Legacy setup shim.

The environment used for the reproduction has no ``wheel`` package, so PEP 660
editable installs (which build a wheel) fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` falls back to ``setup.py develop`` and works offline.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
